package search

// Reference implementations of the search kernels, preserved verbatim from
// the pre-CSR slice-of-slices code path (per-node adjacency slices +
// bounds-checked Graph methods). They exist for two reasons:
//
//  1. Equivalence: the frozen kernels must stay bit-for-bit identical to
//     these — same hits, same messages, same RNG draw sequence — across
//     random topologies and seeds (TestFrozenKernels*Equivalence below).
//  2. Benchmarks: BenchmarkReference* vs BenchmarkScratch* in
//     scratch_test.go is the before/after record of the CSR migration
//     (scripts/bench.sh captures both into BENCH_PR2.json).

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// referenceFlood is the historical Flood kernel on the mutable Graph.
func referenceFlood(g *graph.Graph, src, maxTTL int) Result {
	n := g.N()
	mark := make([]bool, n)
	depth := make([]int32, n)
	res := Result{Hits: make([]int, maxTTL+1), Messages: make([]int, maxTTL+1)}
	mark[src] = true
	queue := []int32{int32(src)}
	hits, msgs := 0, 0
	prevDepth := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := int(depth[u])
		if du > prevDepth {
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		deg := g.Degree(int(u))
		if du == 0 {
			msgs += deg
		} else if deg > 0 {
			msgs += deg - 1
		}
		for _, w := range g.Neighbors(int(u)) {
			if !mark[w] {
				mark[w] = true
				depth[w] = int32(du + 1)
				queue = append(queue, w)
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res
}

// referenceNFTargets mirrors Scratch.nfTargets on the slice-of-slices path.
func referenceNFTargets(g *graph.Graph, u, sender int32, kMin int, rng *xrand.RNG) []int32 {
	var cand []int32
	for _, w := range g.Neighbors(int(u)) {
		if w != sender {
			cand = append(cand, w)
		}
	}
	if len(cand) <= kMin {
		return cand
	}
	for i := 0; i < kMin; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return cand[:kMin]
}

// referenceNormalizedFlood is the historical NF kernel.
func referenceNormalizedFlood(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG) Result {
	n := g.N()
	mark := make([]bool, n)
	depth := make([]int32, n)
	res := Result{Hits: make([]int, maxTTL+1), Messages: make([]int, maxTTL+1)}
	mark[src] = true
	queue := []int32{int32(src)}
	from := []int32{-1}
	hits, msgs := 0, 0
	prevDepth := 0
	for head := 0; head < len(queue); head++ {
		u, sender := queue[head], from[head]
		du := int(depth[u])
		if du > prevDepth {
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		targets := referenceNFTargets(g, u, sender, kMin, rng)
		msgs += len(targets)
		for _, w := range targets {
			if !mark[w] {
				mark[w] = true
				depth[w] = int32(du + 1)
				queue = append(queue, w)
				from = append(from, u)
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res
}

// referenceRandomWalk is the historical non-backtracking walk on the
// bounds-checked Graph.RandomNeighborExcluding.
func referenceRandomWalk(g *graph.Graph, src, steps int, rng *xrand.RNG) Result {
	res := Result{Hits: make([]int, steps+1), Messages: make([]int, steps+1)}
	mark := make([]bool, g.N())
	mark[src] = true
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := g.RandomNeighborExcluding(cur, prev, rng)
		if next < 0 {
			if prev >= 0 {
				next = prev
			} else {
				res.Hits[t] = hits
				res.Messages[t] = res.Messages[t-1]
				continue
			}
		}
		prev, cur = cur, next
		if !mark[cur] {
			mark[cur] = true
			hits++
		}
		res.Hits[t] = hits
		res.Messages[t] = t
	}
	return res
}

// referenceSearchGraphs yields a spread of topology shapes: PA with and
// without cutoffs, CM multigraph survivors, trees, and sparse disconnected
// graphs.
func referenceSearchGraphs(t testing.TB) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	for i, cfg := range []gen.PAConfig{
		{N: 500, M: 1},
		{N: 700, M: 2, KC: 10},
		{N: 900, M: 3, KC: 40},
	} {
		g, _, err := gen.PA(cfg, xrand.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	cm, _, err := gen.CM(gen.CMConfig{N: 600, M: 1, Gamma: 2.3}, xrand.New(55))
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, cm) // disconnected: floods saturate below N
	return gs
}

// TestFrozenKernelsFloodEquivalence: the CSR Flood matches the historical
// kernel on every graph shape and source.
func TestFrozenKernelsFloodEquivalence(t *testing.T) {
	t.Parallel()
	for gi, g := range referenceSearchGraphs(t) {
		f := g.Freeze()
		s := NewScratch(0)
		for _, src := range []int{0, 1, g.N() / 2, g.N() - 1} {
			for _, ttl := range []int{0, 1, 4, 12} {
				want := referenceFlood(g, src, ttl)
				got, err := s.Flood(f, src, ttl)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "flood", want, got)
				_ = gi
			}
		}
	}
}

// TestFrozenKernelsNFEquivalence: the CSR NF consumes the same RNG stream
// and produces identical results. The two kernels run on paired RNGs
// seeded identically; any divergence in draw order would desynchronize
// them and fail loudly.
func TestFrozenKernelsNFEquivalence(t *testing.T) {
	t.Parallel()
	for _, g := range referenceSearchGraphs(t) {
		f := g.Freeze()
		s := NewScratch(0)
		for seed := uint64(0); seed < 6; seed++ {
			src := int(seed) % g.N()
			ra, rb := xrand.New(seed), xrand.New(seed)
			want := referenceNormalizedFlood(g, src, 8, 2, ra)
			got, err := s.NormalizedFlood(f, src, 8, 2, rb)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "nf", want, got)
			if ra.Uint64() != rb.Uint64() {
				t.Fatal("nf consumed different RNG draw counts")
			}
		}
	}
}

// TestFrozenKernelsRWEquivalence: same for the random walk, including the
// post-run RNG state check.
func TestFrozenKernelsRWEquivalence(t *testing.T) {
	t.Parallel()
	for _, g := range referenceSearchGraphs(t) {
		f := g.Freeze()
		s := NewScratch(0)
		for seed := uint64(10); seed < 16; seed++ {
			src := int(seed) % g.N()
			ra, rb := xrand.New(seed), xrand.New(seed)
			want := referenceRandomWalk(g, src, 800, ra)
			got, err := s.RandomWalk(f, src, 800, rb)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "rw", want, got)
			if ra.Uint64() != rb.Uint64() {
				t.Fatal("rw consumed different RNG draw counts")
			}
		}
	}
}

// TestFrozenKernelsNFBudgetEquivalence composes the two RNG-consuming
// kernels, the paper's §V-B normalization.
func TestFrozenKernelsNFBudgetEquivalence(t *testing.T) {
	t.Parallel()
	for _, g := range referenceSearchGraphs(t) {
		f := g.Freeze()
		s := NewScratch(0)
		for seed := uint64(20); seed < 24; seed++ {
			src := int(seed) % g.N()
			ra, rb := xrand.New(seed), xrand.New(seed)
			wantNF := referenceNormalizedFlood(g, src, 6, 2, ra)
			wantRW := referenceRandomWalk(g, src, wantNF.Messages[6], ra)
			gotRW, gotNF, err := s.RandomWalkWithNFBudget(f, src, 6, 2, rb)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "nf-budget/nf", wantNF, gotNF)
			for tt := 0; tt <= 6; tt++ {
				b := wantNF.Messages[tt]
				if gotRW.Hits[tt] != wantRW.HitsAt(b) || gotRW.Messages[tt] != b {
					t.Fatalf("nf-budget/rw diverges at tau=%d", tt)
				}
			}
		}
	}
}

// --- Before/after benchmarks ------------------------------------------

// BenchmarkReferenceFlood is the pre-CSR flood for comparison against
// BenchmarkScratchFlood.
func BenchmarkReferenceFlood(b *testing.B) {
	g := scratchTestGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceFlood(g, i%g.N(), 8)
	}
}

// BenchmarkReferenceNormalizedFlood is the pre-CSR NF for comparison
// against BenchmarkScratchNormalizedFlood.
func BenchmarkReferenceNormalizedFlood(b *testing.B) {
	g := scratchTestGraph(b)
	rng := xrand.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceNormalizedFlood(g, i%g.N(), 8, 2, rng)
	}
}

// BenchmarkReferenceRandomWalk is the pre-CSR walk for comparison against
// BenchmarkScratchRandomWalk below.
func BenchmarkReferenceRandomWalk(b *testing.B) {
	g := scratchTestGraph(b)
	rng := xrand.New(33)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceRandomWalk(g, i%g.N(), 2000, rng)
	}
}

// BenchmarkScratchRandomWalk is the CSR walk on a reused scratch.
func BenchmarkScratchRandomWalk(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(33)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RandomWalk(f, i%f.N(), 2000, rng); err != nil {
			b.Fatal(err)
		}
	}
}
