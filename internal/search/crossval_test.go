package search

// Cross-validation property tests: the search algorithms' outputs are
// checked against independent graph-theoretic ground truth on random
// topologies.

import (
	"testing"
	"testing/quick"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// randomConnectedGraph builds a random connected simple graph.
func randomConnectedGraph(rng *xrand.RNG) *graph.Graph {
	n := rng.IntRange(2, 80)
	g := graph.New(n)
	// Random spanning tree first, then extra edges.
	for u := 1; u < n; u++ {
		if err := g.AddEdge(u, rng.Intn(u)); err != nil {
			panic(err)
		}
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Property: FL hits at TTL t equal the BFS ball size |{v : d(v) <= t}| —
// flooding is exactly a breadth-first sweep.
func TestFloodMatchesBFSBallProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomConnectedGraph(rng)
		src := rng.Intn(g.N())
		maxTTL := rng.IntRange(0, 10)
		res, err := Flood(g, src, maxTTL)
		if err != nil {
			return false
		}
		dist := g.BFS(src)
		for tau := 0; tau <= maxTTL; tau++ {
			ball := 0
			for _, d := range dist {
				if d >= 0 && int(d) <= tau {
					ball++
				}
			}
			if res.Hits[tau] != ball {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: NF hits never exceed FL hits at the same TTL (NF forwards to
// a subset of FL's targets), and NF messages never exceed FL messages.
func TestNFDominatedByFLProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomConnectedGraph(rng)
		src := rng.Intn(g.N())
		const maxTTL = 8
		kMin := rng.IntRange(1, 4)
		fl, err := Flood(g, src, maxTTL)
		if err != nil {
			return false
		}
		nf, err := NormalizedFlood(g, src, maxTTL, kMin, rng)
		if err != nil {
			return false
		}
		for tau := 0; tau <= maxTTL; tau++ {
			if nf.Hits[tau] > fl.Hits[tau] {
				return false
			}
			if nf.Messages[tau] > fl.Messages[tau] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: RW visits form a connected walk — every newly discovered node
// at step t is adjacent to the walk; hits grow by at most 1 per step.
func TestRWIncrementalProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomConnectedGraph(rng)
		src := rng.Intn(g.N())
		res, err := RandomWalk(g, src, 50, rng)
		if err != nil {
			return false
		}
		for tau := 1; tau <= 50; tau++ {
			delta := res.Hits[tau] - res.Hits[tau-1]
			if delta < 0 || delta > 1 {
				return false
			}
		}
		return res.Hits[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FloodDelivery's reported time equals the true shortest path.
func TestFloodDeliveryMatchesBFSProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomConnectedGraph(rng)
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		d, err := FloodDelivery(g.Freeze(), src, dst, g.N())
		if err != nil {
			return false
		}
		want := int(g.BFS(src)[dst])
		return d.Found && d.Time == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: expanding ring finds a target iff it is within maxTTL hops,
// and reports the smallest schedule TTL covering the distance.
func TestExpandingRingExactnessProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomConnectedGraph(rng)
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		trueDist := int(g.BFS(src)[dst])
		const maxTTL = 8
		res, err := ExpandingRing(g.Freeze(), src, func(v int) bool { return v == dst }, nil, maxTTL)
		if err != nil {
			return false
		}
		if trueDist <= maxTTL {
			if !res.Found {
				return false
			}
			// Ring TTL must cover the distance, and the previous ring
			// (if any) must not.
			if src != dst && res.TTL < trueDist {
				return false
			}
			return true
		}
		return !res.Found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check the static searches against the live protocol: a flood on a
// generated topology and the same topology driven through handleQuery
// semantics must agree on reachability. (The live runtime is tested in
// internal/p2p; here we pin the static side against gen outputs.)
func TestFloodReachesGiantComponentExactly(t *testing.T) {
	t.Parallel()
	g, _, err := gen.CM(gen.CMConfig{N: 3000, M: 1, Gamma: 2.4}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) < 2 {
		t.Skip("CM draw happened to be connected")
	}
	src := comps[0][0]
	res, err := Flood(g, src, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitsAt(g.N()) != len(comps[0]) {
		t.Fatalf("flood swept %d nodes, component has %d", res.HitsAt(g.N()), len(comps[0]))
	}
}
