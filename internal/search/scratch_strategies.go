package search

// Allocation-free Scratch variants of the related-work strategy kernels
// (KRandomWalks, HighDegreeWalk, ProbabilisticFlood, HybridSearch) and of
// FloodDelivery. Each is bit-for-bit identical to its package-level
// counterpart — same traversal order, same RNG consumption, same Hits and
// Messages — which the reference equivalence tests pin; the package-level
// functions are thin wrappers running on a fresh Scratch. With these, the
// strategies experiment in internal/sim is allocation-free end to end, the
// same property the FL/NF/RW kernels gained in earlier PRs.

import (
	"fmt"
	"slices"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// KRandomWalks runs `walkers` independent non-backtracking random walks
// from src, exactly as the package-level KRandomWalks, reusing s's buffers.
// The Result aliases s.
func (s *Scratch) KRandomWalks(f *graph.Frozen, src, walkers, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if walkers < 1 {
		return Result{}, fmt.Errorf("search: walkers %d must be >= 1", walkers)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	res := Result{
		Hits:     s.intBuf(steps + 1),
		Messages: s.intBuf(steps + 1),
	}
	// val[v] is the earliest per-walker step at which v was reached; seen
	// lists the stamped nodes so the histogram never scans the whole graph.
	seen := s.cur[:0]
	s.mark[src] = ep
	s.val[src] = 0
	seen = append(seen, int32(src))
	for w := 0; w < walkers; w++ {
		cur, prev := src, -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break // isolated source
			}
			prev, cur = cur, next
			if s.mark[cur] != ep {
				s.mark[cur] = ep
				s.val[cur] = int32(t)
				seen = append(seen, int32(cur))
			} else if int32(t) < s.val[cur] {
				s.val[cur] = int32(t)
			}
		}
	}
	for _, v := range seen {
		res.Hits[s.val[v]]++
	}
	for t := 1; t <= steps; t++ {
		res.Hits[t] += res.Hits[t-1]
		res.Messages[t] = walkers * t
	}
	s.cur = seen
	return res, nil
}

// HighDegreeWalk runs the Adamic et al. degree-seeking walk, exactly as the
// package-level HighDegreeWalk, reusing s's buffers. The Result aliases s.
func (s *Scratch) HighDegreeWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	res := Result{
		Hits:     s.intBuf(steps + 1),
		Messages: s.intBuf(steps + 1),
	}
	s.mark[src] = ep
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := s.bestUnvisitedNeighbor(f, cur, ep, rng)
		if next < 0 {
			var ok bool
			next, ok = Step(f, cur, prev, rng)
			if !ok {
				// Stuck on an isolated node.
				res.Hits[t] = hits
				res.Messages[t] = res.Messages[t-1]
				continue
			}
		}
		prev, cur = cur, next
		if s.mark[cur] != ep {
			s.mark[cur] = ep
			hits++
		}
		res.Hits[t] = hits
		res.Messages[t] = t
	}
	return res, nil
}

// bestUnvisitedNeighbor returns the highest-degree neighbor of u whose mark
// is not ep, breaking ties uniformly at random by reservoir sampling, or -1
// when every neighbor is visited (or u has none).
func (s *Scratch) bestUnvisitedNeighbor(f *graph.Frozen, u int, ep int32, rng *xrand.RNG) int {
	best, bestDeg, ties := -1, -1, 0
	for _, v := range f.Neighbors(u) {
		if s.mark[v] == ep {
			continue
		}
		d := f.Degree(int(v))
		switch {
		case d > bestDeg:
			best, bestDeg, ties = int(v), d, 1
		case d == bestDeg:
			ties++
			if rng.Intn(ties) == 0 {
				best = int(v)
			}
		}
	}
	return best
}

// ProbabilisticFlood runs probabilistic flooding, exactly as the
// package-level ProbabilisticFlood, reusing s's buffers. The Result
// aliases s.
func (s *Scratch) ProbabilisticFlood(f *graph.Frozen, src, maxTTL int, p float64, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	if p < 0 || p > 1 {
		return Result{}, fmt.Errorf("%w: %v", ErrBadProb, p)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	res := Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	fromCur := append(s.fromCur[:0], -1)
	next, fromNext := s.next[:0], s.fromNext[:0]
	hits, msgs := 0, 0
	d := 0
	for len(cur) > 0 {
		for i, u := range cur {
			sender := fromCur[i]
			hits++
			if d == maxTTL {
				continue
			}
			for _, v := range f.Neighbors(int(u)) {
				if v == sender {
					continue
				}
				if d > 0 && !rng.Bool(p) {
					continue // interior node dropped this copy
				}
				msgs++
				if s.mark[v] != ep {
					s.mark[v] = ep
					next = append(next, v)
					fromNext = append(fromNext, u)
				}
			}
		}
		res.Hits[d] = hits
		if d+1 <= maxTTL {
			res.Messages[d+1] = msgs
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		fromCur, fromNext = fromNext, fromCur[:0]
		d++
	}
	for t := d; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	s.cur, s.next, s.fromCur, s.fromNext = cur, next, fromCur, fromNext
	return res, nil
}

// HybridSearch runs the GMS flood-then-walk hybrid, exactly as the
// package-level HybridSearch, reusing s's buffers. The Result aliases s.
func (s *Scratch) HybridSearch(f *graph.Frozen, src, floodTTL, walkers, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, floodTTL); err != nil {
		return Result{}, err
	}
	if walkers < 1 {
		return Result{}, fmt.Errorf("search: walkers %d must be >= 1", walkers)
	}
	if steps < 0 {
		return Result{}, fmt.Errorf("%w: %d walk steps", ErrBadTTL, steps)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	// Two live epochs: ep stamps the flood's coverage, ep2 the walkers'
	// first-seen set. Reserving both up front keeps ep valid across the
	// wrap check inside the second newEpoch.
	s.reserveEpochs(2)

	total := floodTTL + steps
	res := Result{
		Hits:     s.intBuf(total + 1),
		Messages: s.intBuf(total + 1),
	}
	flood := Result{
		Hits:     s.intBuf(floodTTL + 1),
		Messages: s.intBuf(floodTTL + 1),
	}
	frontier, _ := s.floodLevels(f, src, floodTTL, flood, -1)
	ep := s.epoch
	copy(res.Hits, flood.Hits)
	copy(res.Messages, flood.Messages)

	// Walk starts: the flood's outermost frontier in ascending node order
	// (matching the package-level implementation, which scans BFS depths by
	// node ID), falling back to the whole covered ball when the frontier is
	// empty.
	starts := append(s.cand[:0], frontier...)
	slices.Sort(starts)
	if len(starts) == 0 {
		for v, n := 0, f.N(); v < n; v++ {
			if s.mark[v] == ep {
				starts = append(starts, int32(v))
			}
		}
	}
	s.cand = starts

	// val[v] is the earliest per-walker step at which any walker reached an
	// uncovered node v (stamped ep2); seen lists the stamped nodes.
	ep2 := s.newEpoch()
	seen := s.fromCur[:0]
	for w := 0; w < walkers; w++ {
		cur, prev := int(starts[rng.Intn(len(starts))]), -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break
			}
			prev, cur = cur, next
			if s.mark[cur] == ep {
				continue // covered by the flood phase
			}
			if s.mark[cur] != ep2 {
				s.mark[cur] = ep2
				s.val[cur] = int32(t)
				seen = append(seen, int32(cur))
			} else if int32(t) < s.val[cur] {
				s.val[cur] = int32(t)
			}
		}
	}
	s.fromCur = seen
	newHits := s.intBuf(steps + 1)
	for _, v := range seen {
		newHits[s.val[v]]++
	}
	base := flood.HitsAt(floodTTL)
	baseMsgs := flood.MessagesAt(floodTTL)
	cum := 0
	for t := 1; t <= steps; t++ {
		cum += newHits[t]
		res.Hits[floodTTL+t] = base + cum
		res.Messages[floodTTL+t] = baseMsgs + walkers*t
	}
	res.Hits[floodTTL] = base
	return res, nil
}

// FloodDelivery measures flooding's delivery time to a specific target,
// exactly as the package-level FloodDelivery, reusing s's buffers — the
// whole measurement is one bounded two-queue sweep, with no separate BFS
// pass and no per-call distance array.
func (s *Scratch) FloodDelivery(f *graph.Frozen, src, target, maxTTL int) (Delivery, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Delivery{}, err
	}
	if target < 0 || target >= f.N() {
		return Delivery{}, fmt.Errorf("%w: target %d", ErrBadSource, target)
	}
	if target == src {
		return Delivery{Found: true}, nil
	}
	s.reset()
	s.ensure(f.N())
	res := Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	_, d := s.floodLevels(f, src, maxTTL, res, int32(target))
	if d < 0 {
		return Delivery{Found: false, Time: maxTTL, Messages: res.MessagesAt(maxTTL)}, nil
	}
	return Delivery{Found: true, Time: d, Messages: res.MessagesAt(d)}, nil
}
