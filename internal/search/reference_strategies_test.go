package search

// Pre-Scratch reference implementations of the strategy kernels, preserved
// verbatim from before the allocation-free migration (the same pattern
// reference_test.go uses for FL/NF/RW). The Scratch variants must
// reproduce them bit-for-bit — hits, messages, and RNG draw sequence — so
// any behavioral drift in the hot kernels is caught here rather than as a
// silent change in experiment output.

import (
	"fmt"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// referenceKRandomWalks is the pre-Scratch KRandomWalks implementation.
func referenceKRandomWalks(f *graph.Frozen, src, walkers, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if walkers < 1 {
		return Result{}, fmt.Errorf("search: walkers %d must be >= 1", walkers)
	}
	res := Result{
		Hits:     make([]int, steps+1),
		Messages: make([]int, steps+1),
	}
	firstSeen := make([]int32, f.N())
	for i := range firstSeen {
		firstSeen[i] = -1
	}
	firstSeen[src] = 0
	for w := 0; w < walkers; w++ {
		cur, prev := src, -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break
			}
			prev, cur = cur, next
			if firstSeen[cur] < 0 || int32(t) < firstSeen[cur] {
				firstSeen[cur] = int32(t)
			}
		}
	}
	for _, t := range firstSeen {
		if t >= 0 {
			res.Hits[t]++
		}
	}
	for t := 1; t <= steps; t++ {
		res.Hits[t] += res.Hits[t-1]
		res.Messages[t] = walkers * t
	}
	return res, nil
}

// referenceHighDegreeWalk is the pre-Scratch HighDegreeWalk implementation.
func referenceHighDegreeWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	res := Result{
		Hits:     make([]int, steps+1),
		Messages: make([]int, steps+1),
	}
	visited := make([]bool, f.N())
	visited[src] = true
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := referenceBestUnvisited(f, cur, visited, rng)
		if next < 0 {
			var ok bool
			next, ok = Step(f, cur, prev, rng)
			if !ok {
				res.Hits[t] = hits
				res.Messages[t] = res.Messages[t-1]
				continue
			}
		}
		prev, cur = cur, next
		if !visited[cur] {
			visited[cur] = true
			hits++
		}
		res.Hits[t] = hits
		res.Messages[t] = t
	}
	return res, nil
}

func referenceBestUnvisited(f *graph.Frozen, u int, visited []bool, rng *xrand.RNG) int {
	best, bestDeg, ties := -1, -1, 0
	for _, v := range f.Neighbors(u) {
		if visited[v] {
			continue
		}
		d := f.Degree(int(v))
		switch {
		case d > bestDeg:
			best, bestDeg, ties = int(v), d, 1
		case d == bestDeg:
			ties++
			if rng.Intn(ties) == 0 {
				best = int(v)
			}
		}
	}
	return best
}

// referenceProbabilisticFlood is the pre-Scratch ProbabilisticFlood
// implementation.
func referenceProbabilisticFlood(f *graph.Frozen, src, maxTTL int, p float64, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	res := Result{
		Hits:     make([]int, maxTTL+1),
		Messages: make([]int, maxTTL+1),
	}
	type item struct {
		node int32
		from int32
	}
	depth := make([]int32, f.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []item{{node: int32(src), from: -1}}
	hits, msgs := 0, 0
	prevDepth := 0
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		du := int(depth[it.node])
		if du > prevDepth {
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		for _, v := range f.Neighbors(int(it.node)) {
			if v == it.from {
				continue
			}
			if du > 0 && !rng.Bool(p) {
				continue
			}
			msgs++
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, item{node: v, from: it.node})
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res, nil
}

// referenceHybridSearch is the pre-Scratch HybridSearch implementation
// (flood, full BFS for coverage/frontier, per-call firstSeen array).
func referenceHybridSearch(f *graph.Frozen, src, floodTTL, walkers, steps int, rng *xrand.RNG) (Result, error) {
	var scratch Scratch
	flood, err := scratch.Flood(f, src, floodTTL)
	if err != nil {
		return Result{}, err
	}
	dist := f.BFS(src)
	covered := make([]bool, f.N())
	var frontier []int
	var ball []int
	for v, d := range dist {
		if d < 0 || int(d) > floodTTL {
			continue
		}
		covered[v] = true
		ball = append(ball, v)
		if int(d) == floodTTL {
			frontier = append(frontier, v)
		}
	}
	starts := frontier
	if len(starts) == 0 {
		starts = ball
	}
	total := floodTTL + steps
	res := Result{
		Hits:     make([]int, total+1),
		Messages: make([]int, total+1),
	}
	copy(res.Hits, flood.Hits)
	copy(res.Messages, flood.Messages)
	firstSeen := make([]int32, f.N())
	for i := range firstSeen {
		firstSeen[i] = -1
	}
	for w := 0; w < walkers; w++ {
		cur, prev := starts[rng.Intn(len(starts))], -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break
			}
			prev, cur = cur, next
			if !covered[cur] && (firstSeen[cur] < 0 || int32(t) < firstSeen[cur]) {
				firstSeen[cur] = int32(t)
			}
		}
	}
	newHits := make([]int, steps+1)
	for _, t := range firstSeen {
		if t >= 0 {
			newHits[t]++
		}
	}
	base := flood.HitsAt(floodTTL)
	baseMsgs := flood.MessagesAt(floodTTL)
	cum := 0
	for s := 1; s <= steps; s++ {
		cum += newHits[s]
		res.Hits[floodTTL+s] = base + cum
		res.Messages[floodTTL+s] = baseMsgs + walkers*s
	}
	res.Hits[floodTTL] = base
	return res, nil
}

// TestScratchStrategiesMatchReference pins every Scratch strategy kernel to
// its pre-Scratch reference implementation on the canonical topology:
// identical Hits, Messages, and RNG draw sequences, across repeated calls
// on one reused scratch.
func TestScratchStrategiesMatchReference(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0) // deliberately unsized: buffers must grow on demand
	for _, src := range []int{0, 17, 99, 1234} {
		a, err := referenceKRandomWalks(f, src, 8, 200, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.KRandomWalks(f, src, 8, 200, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "kwalks", a, b)

		a, err = referenceHighDegreeWalk(f, src, 400, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		b, err = s.HighDegreeWalk(f, src, 400, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "hds", a, b)

		for _, p := range []float64{0, 0.5, 1} {
			a, err = referenceProbabilisticFlood(f, src, 8, p, xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}
			b, err = s.ProbabilisticFlood(f, src, 8, p, xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "pf", a, b)
		}

		for _, floodTTL := range []int{0, 2, 30} {
			// floodTTL=30 sweeps the whole component: exercises the
			// empty-frontier ball fallback.
			a, err = referenceHybridSearch(f, src, floodTTL, 8, 100, xrand.New(9))
			if err != nil {
				t.Fatal(err)
			}
			b, err = s.HybridSearch(f, src, floodTTL, 8, 100, xrand.New(9))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "hybrid", a, b)
		}
	}
}

// TestScratchFloodDeliveryMatchesReference pins Scratch.FloodDelivery to
// the pre-Scratch flood+BFS formulation.
func TestScratchFloodDeliveryMatchesReference(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	dist := f.BFS(17)
	var scratch Scratch
	res, err := scratch.Flood(f, 17, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{17, 0, 40, 999, 1999} {
		got, err := s.FloodDelivery(f, 17, target, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := Delivery{Found: true}
		if target != 17 {
			d := int(dist[target])
			if d < 0 || d > 5 {
				want = Delivery{Found: false, Time: 5, Messages: res.MessagesAt(5)}
			} else {
				want = Delivery{Found: true, Time: d, Messages: res.MessagesAt(d)}
			}
		}
		if got != want {
			t.Fatalf("FloodDelivery(17 -> %d) = %+v, want %+v", target, got, want)
		}
	}
}
