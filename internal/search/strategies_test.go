package search

import (
	"testing"
	"testing/quick"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// paGraph builds a small PA topology for strategy comparisons.
func paGraph(t testing.TB, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: n, M: m}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHighDegreeWalkValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	if _, err := HighDegreeWalk(g.Freeze(), -1, 2, nil); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := HighDegreeWalk(g.Freeze(), 0, -1, nil); err == nil {
		t.Error("negative steps should fail")
	}
}

func TestHighDegreeWalkPrefersHub(t *testing.T) {
	t.Parallel()
	// Leaf 1's only move is the hub; from the hub the walk must pick an
	// unvisited leaf, never revisit immediately.
	g := star(t, 8)
	res, err := HighDegreeWalk(g.Freeze(), 1, 4, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Steps: 1->0 (hub), 0->leaf, leaf->0 (all neighbors visited except
	// backtrack), 0->new leaf. Distinct nodes: 1,0,leaf,leaf = 4.
	if got := res.Hits[4]; got != 4 {
		t.Fatalf("Hits[4] = %d, want 4 (walk %v)", got, res.Hits)
	}
	if res.Messages[4] != 4 {
		t.Fatalf("Messages[4] = %d, want 4", res.Messages[4])
	}
}

func TestHighDegreeWalkTwoHubs(t *testing.T) {
	t.Parallel()
	// Node 0 has degree 3, node 1 degree 2, rest leaves. From leaf 2 the
	// greedy walk must go to 0 first (its only neighbor), then to the
	// highest-degree unvisited neighbor, which is 1.
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := HighDegreeWalk(g.Freeze(), 2, 2, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[2] != 3 {
		t.Fatalf("Hits[2] = %d, want 3 (2,0,1)", res.Hits[2])
	}
}

func TestHighDegreeWalkIsolatedSource(t *testing.T) {
	t.Parallel()
	g := graph.New(3)
	res, err := HighDegreeWalk(g.Freeze(), 0, 5, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for t2, h := range res.Hits {
		if h != 1 {
			t.Fatalf("Hits[%d] = %d, want 1 for isolated source", t2, h)
		}
	}
}

func TestHighDegreeWalkBeatsBlindWalkOnPA(t *testing.T) {
	t.Parallel()
	// Adamic's core claim: degree-seeking walks cover power-law networks
	// faster than blind walks. Compare average coverage over sources.
	g := paGraph(t, 2000, 2, 42)
	steps := 200
	rng := xrand.New(99)
	var hd, blind int
	for trial := 0; trial < 20; trial++ {
		src := rng.Intn(g.N())
		rh, err := HighDegreeWalk(g.Freeze(), src, steps, rng)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RandomWalk(g, src, steps, rng)
		if err != nil {
			t.Fatal(err)
		}
		hd += rh.Hits[steps]
		blind += rb.Hits[steps]
	}
	if hd <= blind {
		t.Fatalf("degree-seeking walk covered %d <= blind walk %d on PA", hd, blind)
	}
}

func TestHighDegreeWalkHitsMonotone(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 500, 2, 3)
	res, err := HighDegreeWalk(g.Freeze(), 0, 100, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i] < res.Hits[i-1] {
			t.Fatalf("Hits not monotone at %d: %d < %d", i, res.Hits[i], res.Hits[i-1])
		}
	}
}

func TestProbabilisticFloodValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	if _, err := ProbabilisticFlood(g.Freeze(), 0, 2, -0.1, nil); err == nil {
		t.Error("p < 0 should fail")
	}
	if _, err := ProbabilisticFlood(g.Freeze(), 0, 2, 1.1, nil); err == nil {
		t.Error("p > 1 should fail")
	}
	if _, err := ProbabilisticFlood(g.Freeze(), 9, 2, 0.5, nil); err == nil {
		t.Error("bad source should fail")
	}
}

func TestProbabilisticFloodP1EqualsFlood(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 800, 2, 11)
	for _, src := range []int{0, 5, 400} {
		want, err := Flood(g, src, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProbabilisticFlood(g.Freeze(), src, 6, 1, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		for tt := range want.Hits {
			if got.Hits[tt] != want.Hits[tt] {
				t.Fatalf("src %d: p=1 Hits[%d] = %d, flood %d", src, tt, got.Hits[tt], want.Hits[tt])
			}
			if got.Messages[tt] != want.Messages[tt] {
				t.Fatalf("src %d: p=1 Messages[%d] = %d, flood %d", src, tt, got.Messages[tt], want.Messages[tt])
			}
		}
	}
}

func TestProbabilisticFloodP0OnlySourceNeighborhood(t *testing.T) {
	t.Parallel()
	// With p=0 only the source forwards: coverage is exactly the source's
	// closed neighborhood regardless of TTL.
	g := paGraph(t, 500, 2, 13)
	src := 0
	res, err := ProbabilisticFlood(g.Freeze(), src, 8, 0, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := g.Degree(src) + 1
	if res.Hits[8] != want {
		t.Fatalf("p=0 Hits[8] = %d, want %d", res.Hits[8], want)
	}
	if res.Messages[8] != g.Degree(src) {
		t.Fatalf("p=0 Messages[8] = %d, want %d", res.Messages[8], g.Degree(src))
	}
}

func TestProbabilisticFloodCoverageBetween(t *testing.T) {
	t.Parallel()
	// 0 < p < 1 lands between the p=0 and p=1 extremes, and both hits and
	// messages are bounded by full flooding, averaged over trials.
	g := paGraph(t, 2000, 3, 17)
	src := 1
	full, err := Flood(g, src, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	var hits, msgs int
	const trials = 10
	for i := 0; i < trials; i++ {
		res, err := ProbabilisticFlood(g.Freeze(), src, 5, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits[5] > full.Hits[5] {
			t.Fatalf("probabilistic hits %d exceed flood %d", res.Hits[5], full.Hits[5])
		}
		if res.Messages[5] > full.Messages[5] {
			t.Fatalf("probabilistic messages %d exceed flood %d", res.Messages[5], full.Messages[5])
		}
		hits += res.Hits[5]
		msgs += res.Messages[5]
	}
	minHits := (g.Degree(src) + 1) * trials
	if hits <= minHits {
		t.Fatalf("p=0.5 average hits %d no better than p=0 bound %d", hits, minHits)
	}
	if msgs >= full.Messages[5]*trials {
		t.Fatalf("p=0.5 should save messages vs flooding: %d vs %d", msgs, full.Messages[5]*trials)
	}
}

func TestProbabilisticFloodDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 600, 2, 23)
	a, err := ProbabilisticFlood(g.Freeze(), 2, 6, 0.4, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProbabilisticFlood(g.Freeze(), 2, 6, 0.4, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hits {
		if a.Hits[i] != b.Hits[i] || a.Messages[i] != b.Messages[i] {
			t.Fatalf("same seed diverged at t=%d", i)
		}
	}
}

func TestHybridSearchValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 5)
	if _, err := HybridSearch(g.Freeze(), -1, 1, 1, 5, nil); err == nil {
		t.Error("bad source should fail")
	}
	if _, err := HybridSearch(g.Freeze(), 0, 1, 0, 5, nil); err == nil {
		t.Error("zero walkers should fail")
	}
	if _, err := HybridSearch(g.Freeze(), 0, 1, 1, -1, nil); err == nil {
		t.Error("negative steps should fail")
	}
}

func TestHybridSearchFloodPhaseMatchesFlood(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 1000, 2, 31)
	src, floodTTL := 4, 3
	flood, err := Flood(g, src, floodTTL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HybridSearch(g.Freeze(), src, floodTTL, 4, 20, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != floodTTL+20+1 {
		t.Fatalf("combined axis length %d, want %d", len(res.Hits), floodTTL+20+1)
	}
	for tt := 0; tt <= floodTTL; tt++ {
		if res.Hits[tt] != flood.Hits[tt] {
			t.Fatalf("flood phase Hits[%d] = %d, want %d", tt, res.Hits[tt], flood.Hits[tt])
		}
	}
}

func TestHybridSearchWalkPhaseExtendsCoverage(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 3000, 2, 37)
	src, floodTTL, walkers, steps := 0, 2, 8, 150
	res, err := HybridSearch(g.Freeze(), src, floodTTL, walkers, steps, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	base := res.Hits[floodTTL]
	if res.Hits[floodTTL+steps] <= base {
		t.Fatalf("walk phase added no coverage: %d -> %d", base, res.Hits[floodTTL+steps])
	}
	// Messages in the walk phase grow by walkers per step.
	m1 := res.Messages[floodTTL+1] - res.Messages[floodTTL]
	if m1 != walkers {
		t.Fatalf("first walk step added %d messages, want %d", m1, walkers)
	}
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i] < res.Hits[i-1] {
			t.Fatalf("Hits not monotone at %d", i)
		}
		if res.Messages[i] < res.Messages[i-1] {
			t.Fatalf("Messages not monotone at %d", i)
		}
	}
}

func TestHybridSearchZeroStepsIsFlood(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 500, 2, 41)
	flood, err := Flood(g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HybridSearch(g.Freeze(), 3, 4, 2, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != len(flood.Hits) {
		t.Fatalf("axis %d, want %d", len(res.Hits), len(flood.Hits))
	}
	for tt := range flood.Hits {
		if res.Hits[tt] != flood.Hits[tt] {
			t.Fatalf("Hits[%d] = %d, want %d", tt, res.Hits[tt], flood.Hits[tt])
		}
	}
}

func TestHybridSearchSmallComponentFrontierFallback(t *testing.T) {
	t.Parallel()
	// A flood that sweeps its whole component leaves an empty frontier;
	// the walkers must still start (from within the ball) without panic.
	g := pathN(t, 4) // diameter 3 < floodTTL
	res, err := HybridSearch(g.Freeze(), 0, 5, 2, 10, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[5] != 4 {
		t.Fatalf("flood should cover path: %d", res.Hits[5])
	}
	if res.Hits[15] != 4 {
		t.Fatalf("walkers cannot add nodes beyond the component: %d", res.Hits[15])
	}
}

// TestStrategiesHitsWithinN property-checks that every strategy's coverage
// is bounded by the graph order, monotone, and starts at 1, across random
// seeds and parameters.
func TestStrategiesHitsWithinN(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 400, 2, 51)
	fz := g.Freeze()
	f := func(seed uint64, srcRaw, pRaw uint8) bool {
		src := int(srcRaw) % g.N()
		p := float64(pRaw%101) / 100
		rng := xrand.New(seed)
		results := make([]Result, 0, 3)
		r1, err := HighDegreeWalk(fz, src, 50, rng)
		if err != nil {
			return false
		}
		r2, err := ProbabilisticFlood(fz, src, 5, p, rng)
		if err != nil {
			return false
		}
		r3, err := HybridSearch(fz, src, 2, 3, 30, rng)
		if err != nil {
			return false
		}
		results = append(results, r1, r2, r3)
		for _, r := range results {
			if r.Hits[0] != 1 {
				return false
			}
			for i := 1; i < len(r.Hits); i++ {
				if r.Hits[i] < r.Hits[i-1] || r.Hits[i] > g.N() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHighDegreeWalkPA10k(b *testing.B) {
	f := paGraph(b, 10000, 2, 1).Freeze()
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HighDegreeWalk(f, i%f.N(), 500, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbabilisticFloodPA10k(b *testing.B) {
	f := paGraph(b, 10000, 2, 1).Freeze()
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProbabilisticFlood(f, i%f.N(), 6, 0.5, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridSearchPA10k(b *testing.B) {
	f := paGraph(b, 10000, 2, 1).Freeze()
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HybridSearch(f, i%f.N(), 2, 8, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}
