package search

import (
	"reflect"
	"sync"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file is the before/after record for the software-prefetch change
// in the two-queue Flood/NF kernels: floodNoPrefetch below preserves the
// pre-prefetch flood core verbatim (minus the Frozen.Prefetch touches), so
// `go test -bench 'FloodPrefetch' -benchmem` re-measures the gap on
// current hardware instead of trusting stale numbers — the same pattern
// reference_test.go uses for the pre-CSR kernels. The shipped kernels
// touch offsets[cur[i+prefetchDist]] — the head of the dependent-load
// chain offsets[w] → neighbors[offsets[w]] — a few dequeue iterations
// ahead, so the load resolves behind the current iteration's neighbor
// chase. Two rejected variants are documented on Frozen.Prefetch: an
// enqueue-time touch (a whole level early, evicted before use on large
// frontiers) and a deeper two-load touch, both of which measured slower
// than no prefetch at all.

// floodNoPrefetch is the pre-prefetch flood core (PR 3 state), kept
// in-tree for equivalence tests and the before/after benchmark.
func (s *Scratch) floodNoPrefetch(f *graph.Frozen, src, maxTTL int) (Result, error) {
	s.reset()
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	s.ensure(f.N())
	res := Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	ep := s.newEpoch()
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	next := s.next[:0]
	hits, msgs := 0, 0
	d := 0
	for len(cur) > 0 {
		for _, u := range cur {
			hits++
			if d == maxTTL {
				continue
			}
			deg := f.Degree(int(u))
			if d == 0 {
				msgs += deg
			} else if deg > 0 {
				msgs += deg - 1
			}
			for _, w := range f.Neighbors(int(u)) {
				if s.mark[w] != ep {
					s.mark[w] = ep
					next = append(next, w)
				}
			}
		}
		res.Hits[d] = hits
		if d+1 <= maxTTL {
			res.Messages[d+1] = msgs
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		d++
	}
	for t := d; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	s.cur, s.next = cur, next
	return res, nil
}

// prefetchBenchFrozen lazily builds a search-scale topology big enough
// that the frontier spills the cache — where prefetch is supposed to pay.
var prefetchBenchFrozen = sync.OnceValue(func() *graph.Frozen {
	g, _, err := gen.PA(gen.PAConfig{N: 100_000, M: 2, KC: 100}, xrand.New(42))
	if err != nil {
		panic(err)
	}
	return g.Freeze()
})

// TestFloodPrefetchEquivalence pins that the prefetch touches are
// observationally free: identical Results with and without them.
func TestFloodPrefetchEquivalence(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 2, KC: 40}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	f := g.Freeze()
	s := NewScratch(f.N())
	for src := 0; src < 40; src++ {
		with, err := s.Flood(f, src*37, 8)
		if err != nil {
			t.Fatal(err)
		}
		withHits := append([]int(nil), with.Hits...)
		withMsgs := append([]int(nil), with.Messages...)
		without, err := s.floodNoPrefetch(f, src*37, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withHits, without.Hits) || !reflect.DeepEqual(withMsgs, without.Messages) {
			t.Fatalf("src %d: prefetch changed the flood result", src*37)
		}
	}
}

// BenchmarkFloodPrefetch/on vs /off is the before/after measurement for
// the ROADMAP prefetch item, on a 100k-node topology.
func BenchmarkFloodPrefetch(b *testing.B) {
	f := prefetchBenchFrozen()
	s := NewScratch(f.N())
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.floodNoPrefetch(f, i%f.N(), 12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Flood(f, i%f.N(), 12); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNFPrefetch measures the NF kernel with prefetch on the same
// topology (no pre-prefetch NF copy is kept: the flood pair above isolates
// the technique; this tracks the shipping kernel's absolute cost).
func BenchmarkNFPrefetch(b *testing.B) {
	f := prefetchBenchFrozen()
	s := NewScratch(f.N())
	rng := xrand.New(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.NormalizedFlood(f, i%f.N(), 10, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}
