package search

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

func TestFloodLoadStar(t *testing.T) {
	t.Parallel()
	g := star(t, 6)
	load := NewLoad(g.N())
	if err := FloodLoad(g.Freeze(), 1, 3, load); err != nil {
		t.Fatal(err)
	}
	// Leaf 1 sends 1 to the hub; the hub forwards to 4 other leaves;
	// leaves forward nothing (degree 1, sender excluded).
	if load.Forwards[1] != 1 {
		t.Fatalf("source forwards %d, want 1", load.Forwards[1])
	}
	if load.Forwards[0] != 4 {
		t.Fatalf("hub forwards %d, want 4", load.Forwards[0])
	}
	if load.Receipts[0] != 1 {
		t.Fatalf("hub receipts %d, want 1", load.Receipts[0])
	}
	if load.Total() != 5 {
		t.Fatalf("total %d, want 5", load.Total())
	}
}

func TestFloodLoadMatchesMessageCount(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 1500, 2, 61)
	for _, src := range []int{0, 7, 900} {
		res, err := Flood(g, src, 6)
		if err != nil {
			t.Fatal(err)
		}
		load := NewLoad(g.N())
		if err := FloodLoad(g.Freeze(), src, 6, load); err != nil {
			t.Fatal(err)
		}
		if got, want := load.Total(), int64(res.MessagesAt(6)); got != want {
			t.Fatalf("src %d: load total %d != flood messages %d", src, got, want)
		}
	}
}

func TestNormalizedFloodLoadTotalMatches(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 1500, 2, 67)
	src := 3
	res, err := NormalizedFlood(g, src, 6, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	load := NewLoad(g.N())
	// Same seed -> same random fan-out choices -> same total.
	if err := NormalizedFloodLoad(g.Freeze(), src, 6, 2, xrand.New(9), load); err != nil {
		t.Fatal(err)
	}
	if got, want := load.Total(), int64(res.MessagesAt(6)); got != want {
		t.Fatalf("load total %d != NF messages %d", got, want)
	}
}

func TestRandomWalkLoadChargesSteps(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 500, 2, 71)
	load := NewLoad(g.N())
	if err := RandomWalkLoad(g.Freeze(), 0, 250, xrand.New(5), load); err != nil {
		t.Fatal(err)
	}
	if load.Total() != 250 {
		t.Fatalf("walk total %d, want 250", load.Total())
	}
}

func TestLoadValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	wrong := NewLoad(7)
	if err := FloodLoad(g.Freeze(), 0, 2, wrong); err == nil {
		t.Error("size mismatch should fail")
	}
	if err := NormalizedFloodLoad(g.Freeze(), 0, 2, 0, nil, NewLoad(4)); err == nil {
		t.Error("kMin 0 should fail")
	}
	if err := RandomWalkLoad(g.Freeze(), -1, 5, nil, NewLoad(4)); err == nil {
		t.Error("bad source should fail")
	}
	// Isolated source walks nowhere without error.
	g2 := star(t, 1)
	if err := RandomWalkLoad(g2.Freeze(), 0, 5, nil, NewLoad(1)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadWorkShape(t *testing.T) {
	t.Parallel()
	load := NewLoad(3)
	load.Forwards[0] = 5
	load.Receipts[0] = 2
	load.Receipts[2] = 4
	w := load.Work()
	if len(w) != 3 || w[0] != 7 || w[1] != 0 || w[2] != 4 {
		t.Fatalf("work = %v", w)
	}
}

// TestCutoffFlattensSearchLoad is the dynamic version of the paper's
// fairness motivation: under NF traffic from many sources, the Gini of
// per-node handling work must fall when a hard cutoff removes the hubs.
func TestCutoffFlattensSearchLoad(t *testing.T) {
	t.Parallel()
	loadGini := func(kc int) float64 {
		t.Helper()
		g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 2, KC: kc}, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		f := g.Freeze()
		rng := xrand.New(79)
		load := NewLoad(f.N())
		for q := 0; q < 200; q++ {
			if err := NormalizedFloodLoad(f, rng.Intn(f.N()), 6, 2, rng, load); err != nil {
				t.Fatal(err)
			}
		}
		return stats.Gini(load.Work())
	}
	free := loadGini(gen.NoCutoff)
	capped := loadGini(10)
	if capped >= free {
		t.Fatalf("kc=10 should flatten NF search load: Gini %v >= %v", capped, free)
	}
}

func BenchmarkFloodLoadPA10k(b *testing.B) {
	f := paGraph(b, 10000, 2, 1).Freeze()
	load := NewLoad(f.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FloodLoad(f, i%f.N(), 6, load); err != nil {
			b.Fatal(err)
		}
	}
}
