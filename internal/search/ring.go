package search

// Expanding-ring search — the standard TTL-escalation technique from
// Lv et al. ("Search and replication in unstructured peer-to-peer
// networks", cited as [23] by the paper): flood with TTL 1, and if the
// target is not found, retry with a larger TTL, trading repeated small
// floods for not over-flooding on nearby content.

import (
	"fmt"

	"scalefree/internal/graph"
)

// RingResult is the outcome of an expanding-ring search.
type RingResult struct {
	// Found reports whether any target was located.
	Found bool
	// TTL is the ring (TTL value) at which the target was found.
	TTL int
	// Rounds is the number of floods issued.
	Rounds int
	// Messages is the total messages across all rounds (each round
	// re-floods from scratch, as the protocol does).
	Messages int
}

// ExpandingRing searches for any node satisfying `isTarget` by flooding
// with TTLs from the schedule (e.g. 1,2,4,8...) until a hit or the
// schedule is exhausted. A nil schedule uses doubling up to maxTTL.
func ExpandingRing(f *graph.Frozen, src int, isTarget func(node int) bool, schedule []int, maxTTL int) (RingResult, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return RingResult{}, err
	}
	if isTarget == nil {
		return RingResult{}, fmt.Errorf("search: nil target predicate")
	}
	if schedule == nil {
		for ttl := 1; ttl <= maxTTL; ttl *= 2 {
			schedule = append(schedule, ttl)
		}
		if len(schedule) == 0 || schedule[len(schedule)-1] < maxTTL {
			schedule = append(schedule, maxTTL)
		}
	}
	var res RingResult
	if isTarget(src) {
		res.Found = true
		return res, nil
	}
	dist := f.BFS(src)
	var scratch Scratch // one BFS state shared by every escalation round
	for _, ttl := range schedule {
		if ttl < 0 {
			return RingResult{}, fmt.Errorf("%w: schedule entry %d", ErrBadTTL, ttl)
		}
		res.Rounds++
		flood, err := scratch.Flood(f, src, ttl)
		if err != nil {
			return RingResult{}, err
		}
		res.Messages += flood.MessagesAt(ttl)
		// A hit occurs if any node within ttl hops is a target.
		for v, d := range dist {
			if d >= 0 && int(d) <= ttl && isTarget(v) {
				res.Found = true
				res.TTL = ttl
				return res, nil
			}
		}
	}
	res.TTL = schedule[len(schedule)-1]
	return res, nil
}
