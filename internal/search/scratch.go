package search

// Scratch is the allocation-free engine behind every search kernel. The
// paper-scale experiment harness runs millions of Flood/NF/RW calls on a
// handful of topologies; allocating O(N) visited and frontier buffers per
// call made the garbage collector the dominant cost. A Scratch owns those
// buffers — an epoch-stamped visited array (cleared in O(1) by bumping the
// epoch instead of rewriting N entries), the two-queue BFS frontier, the
// NF candidate buffer, and a small arena of per-TTL result series — so
// repeated searches on one topology allocate nothing after the first call.
//
// The BFS kernels use a structure-of-arrays two-queue frontier: `cur`
// holds the nodes of the depth being processed and `next` collects the
// depth below, swapped at each level boundary. The depth of a node is the
// loop counter, so no per-node depth array exists at all — one less O(N)
// store per discovery and one less array to cache-miss on.
//
// Every kernel reads the topology through *graph.Frozen, the CSR snapshot:
// flat offsets/neighbors arrays instead of a slice of slices, so the hot
// loops are two array indexings per hop with no pointer chase and no
// bounds-checked Graph method calls. Freeze once per generated topology
// (the sim engine does this right after generation, letting the mutable
// Graph and its edge map be collected) and run any number of searches.
//
// Usage: one Scratch per goroutine (it is not safe for concurrent use),
// reused across any number of searches and graph sizes (buffers grow on
// demand and are retained). Results returned by Scratch methods alias the
// scratch's internal buffers: they are valid until the next call on the
// same Scratch, so consume (or copy) them before searching again.
//
// The zero value is ready to use. The package-level Flood, NormalizedFlood,
// RandomWalk, RandomWalkWithNFBudget, KRandomWalks, HighDegreeWalk,
// ProbabilisticFlood, and HybridSearch functions are thin wrappers that run
// on a fresh Scratch per call; they remain the convenient API when
// allocation cost does not matter.

import (
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Scratch holds reusable search state. See the package comment above for
// the ownership and aliasing rules. A Scratch must not be copied after
// first use: copies share the same backing arrays, so two copies searching
// concurrently race on the visited marks. Pass *Scratch, and derive new
// scratches with NewScratch (or the zero value), never by value-copying
// a used one.
type Scratch struct {
	// epoch stamps the current search; mark[v] == epoch means v was
	// visited by it. Bumping epoch invalidates every stamp at once.
	epoch int32
	mark  []int32
	// val[v] is a per-node value tied to a mark stamp (walker kernels
	// store the earliest step a node was seen); valid only while mark[v]
	// carries the epoch that wrote it.
	val []int32
	// cur and next are the two-queue BFS frontier: the depth being
	// processed and the depth being discovered.
	cur, next []int32
	// fromCur and fromNext run parallel to cur/next for kernels that need
	// the forwarding sender (NF, the load variants, PF).
	fromCur, fromNext []int32
	// cand is the NF candidate buffer (neighbors minus the sender).
	cand []int32
	// bufs is a small arena of per-TTL series reused across calls; nbuf
	// is the number handed out since the last reset.
	bufs [][]int
	nbuf int
	// pf is the software-prefetch sink: the BFS kernels fold
	// Frozen.Prefetch values for frontier nodes prefetchDist dequeue
	// iterations ahead into it, so the compiler cannot elide the
	// cache-warming loads. The value itself is meaningless.
	pf int32
}

// NewScratch returns a Scratch pre-sized for n-node graphs. n may be 0;
// buffers grow on first use either way.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// reset starts a fresh top-level search: previously returned Results are
// invalidated and their buffers recycled.
func (s *Scratch) reset() { s.nbuf = 0 }

// ensure grows the per-node arrays to cover n nodes.
func (s *Scratch) ensure(n int) {
	if len(s.mark) < n {
		s.mark = make([]int32, n)
		s.val = make([]int32, n)
		s.epoch = 0 // fresh zeroed marks: restart the epoch counter
	}
}

// prefetchDist is how many dequeue iterations ahead the BFS kernels touch
// a frontier node's CSR row. Far enough that the offsets load resolves
// behind real work, near enough that the line is still resident when its
// iteration arrives (a whole-level lookahead fails both ways: large
// frontiers evict the line again before use).
const prefetchDist = 12

// newEpoch invalidates all visited marks in O(1).
func (s *Scratch) newEpoch() int32 {
	if s.epoch == math.MaxInt32 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	return s.epoch
}

// reserveEpochs guarantees the next n newEpoch calls will not wrap, so a
// kernel can hold several live epochs at once (hybrid search keeps the
// flood's coverage stamp while the walkers stamp first-seen steps).
func (s *Scratch) reserveEpochs(n int32) {
	if s.epoch > math.MaxInt32-n {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
}

// intBuf hands out a zeroed length-n series from the arena.
func (s *Scratch) intBuf(n int) []int {
	if s.nbuf == len(s.bufs) {
		s.bufs = append(s.bufs, nil)
	}
	b := s.bufs[s.nbuf]
	if cap(b) < n {
		b = make([]int, n)
		s.bufs[s.nbuf] = b
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	s.nbuf++
	return b
}

// Flood runs flooding search from src up to maxTTL hops, exactly as the
// package-level Flood, reusing s's buffers. The Result aliases s.
func (s *Scratch) Flood(f *graph.Frozen, src, maxTTL int) (Result, error) {
	s.reset()
	return s.flood(f, src, maxTTL)
}

func (s *Scratch) flood(f *graph.Frozen, src, maxTTL int) (Result, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	s.ensure(f.N())
	res := Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	s.floodLevels(f, src, maxTTL, res, -1)
	return res, nil
}

// floodLevels is the two-queue flooding core: it fills res and returns the
// final frontier — the nodes at depth exactly maxTTL, in discovery order —
// plus the depth at which `target` was discovered (-1 when target is -1 or
// unreached). The frontier aliases s's queues and is valid until the next
// search on s.
func (s *Scratch) floodLevels(f *graph.Frozen, src, maxTTL int, res Result, target int32) (frontier []int32, foundDepth int) {
	ep := s.newEpoch()
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	next := s.next[:0]
	foundDepth = -1
	if target == int32(src) {
		foundDepth = 0
	}
	hits, msgs := 0, 0
	pf := s.pf
	d := 0
	for len(cur) > 0 {
		for i, u := range cur {
			// Software prefetch: touch the CSR row of the node a few
			// dequeue iterations ahead, so its offsets line is resolving
			// while this iteration chases neighbors (see Frozen.Prefetch).
			if i+prefetchDist < len(cur) {
				pf += f.Prefetch(cur[i+prefetchDist])
			}
			hits++
			if d == maxTTL {
				continue
			}
			// Forward to all neighbors except the sender. With duplicate
			// suppression the sender is never re-enqueued anyway; the
			// message count excludes the reverse transmission per the
			// protocol.
			deg := f.Degree(int(u))
			if d == 0 {
				msgs += deg
			} else if deg > 0 {
				msgs += deg - 1
			}
			for _, w := range f.Neighbors(int(u)) {
				if s.mark[w] != ep {
					s.mark[w] = ep
					if w == target {
						foundDepth = d + 1
					}
					next = append(next, w)
				}
			}
		}
		// Level complete: record cumulative values. Messages sent by
		// depth <= d arrive by d+1.
		res.Hits[d] = hits
		if d+1 <= maxTTL {
			res.Messages[d+1] = msgs
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		d++
	}
	// The sweep exhausted its component (or reached maxTTL): later TTLs
	// see the same cumulative totals.
	for t := d; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	s.pf = pf
	s.cur, s.next = cur, next
	if d == maxTTL && len(cur) > 0 {
		return cur, foundDepth
	}
	return nil, foundDepth
}

// nfTargets builds node u's NF forward set: all neighbors except the
// sender, down-sampled to kMin uniformly chosen entries (partial
// Fisher–Yates) when larger. Shared by the search and load-profile NF
// kernels so their RNG consumption can never diverge. The returned slice
// reuses s.cand and is valid until the next call.
func (s *Scratch) nfTargets(f *graph.Frozen, u, sender int32, kMin int, rng *xrand.RNG) []int32 {
	cand := s.cand[:0]
	for _, w := range f.Neighbors(int(u)) {
		if w != sender {
			cand = append(cand, w)
		}
	}
	s.cand = cand
	if len(cand) <= kMin {
		return cand
	}
	for i := 0; i < kMin; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return cand[:kMin]
}

// NormalizedFlood runs NF search from src, exactly as the package-level
// NormalizedFlood, reusing s's buffers. The Result aliases s.
func (s *Scratch) NormalizedFlood(f *graph.Frozen, src, maxTTL, kMin int, rng *xrand.RNG) (Result, error) {
	s.reset()
	return s.normalizedFlood(f, src, maxTTL, kMin, rng)
}

func (s *Scratch) normalizedFlood(f *graph.Frozen, src, maxTTL, kMin int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	if kMin < 1 {
		return Result{}, errBadKMin(kMin)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.ensure(f.N())
	ep := s.newEpoch()
	res := Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	fromCur := append(s.fromCur[:0], -1)
	next, fromNext := s.next[:0], s.fromNext[:0]
	hits, msgs := 0, 0
	pf := s.pf
	d := 0
	for len(cur) > 0 {
		for i, u := range cur {
			if i+prefetchDist < len(cur) {
				pf += f.Prefetch(cur[i+prefetchDist]) // see prefetchDist
			}
			sender := fromCur[i]
			hits++
			if d == maxTTL {
				continue
			}
			targets := s.nfTargets(f, u, sender, kMin, rng)
			msgs += len(targets)
			for _, w := range targets {
				if s.mark[w] != ep {
					s.mark[w] = ep
					next = append(next, w)
					fromNext = append(fromNext, u)
				}
			}
		}
		res.Hits[d] = hits
		if d+1 <= maxTTL {
			res.Messages[d+1] = msgs
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		fromCur, fromNext = fromNext, fromCur[:0]
		d++
	}
	for t := d; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	s.pf = pf
	s.cur, s.next, s.fromCur, s.fromNext = cur, next, fromCur, fromNext
	return res, nil
}

// RandomWalk runs a non-backtracking walk of exactly `steps` hops, exactly
// as the package-level RandomWalk, reusing s's buffers. The Result aliases
// s.
func (s *Scratch) RandomWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	s.reset()
	return s.randomWalk(f, src, steps, rng)
}

func (s *Scratch) randomWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.ensure(f.N())
	ep := s.newEpoch()
	res := Result{
		Hits:     s.intBuf(steps + 1),
		Messages: s.intBuf(steps + 1),
	}
	s.mark[src] = ep
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for step := 1; step <= steps; step++ {
		next, ok := Step(f, cur, prev, rng)
		if !ok {
			// Stuck on an isolated node: the walk cannot move.
			res.Hits[step] = hits
			res.Messages[step] = res.Messages[step-1]
			continue
		}
		prev, cur = cur, next
		if s.mark[cur] != ep {
			s.mark[cur] = ep
			hits++
		}
		res.Hits[step] = hits
		res.Messages[step] = step
	}
	return res, nil
}

// RandomWalkWithNFBudget runs the paper's §V-B RW normalization, exactly as
// the package-level RandomWalkWithNFBudget, reusing s's buffers. Both
// returned Results alias s.
func (s *Scratch) RandomWalkWithNFBudget(f *graph.Frozen, src, maxTTL, kMin int, rng *xrand.RNG) (rw, nf Result, err error) {
	s.reset()
	nf, err = s.normalizedFlood(f, src, maxTTL, kMin, rng)
	if err != nil {
		return Result{}, Result{}, err
	}
	budget := nf.Messages[maxTTL]
	walk, err := s.randomWalk(f, src, budget, rng)
	if err != nil {
		return Result{}, Result{}, err
	}
	rw = Result{
		Hits:     s.intBuf(maxTTL + 1),
		Messages: s.intBuf(maxTTL + 1),
	}
	for t := 0; t <= maxTTL; t++ {
		b := nf.Messages[t]
		rw.Hits[t] = walk.HitsAt(b)
		rw.Messages[t] = b
	}
	return rw, nf, nil
}

// FloodVisit sweeps the maxTTL-hop ball around src in breadth-first order
// with duplicate suppression, calling visit(node, depth) once per
// discovered node; visit returning false stops the sweep early. It is the
// allocation-free counterpart of graph.BFSWithin, used by the content
// layer's flooding query resolver.
func (s *Scratch) FloodVisit(f *graph.Frozen, src, maxTTL int, visit func(node, depth int) bool) error {
	if err := validate(f, src, maxTTL); err != nil {
		return err
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	next := s.next[:0]
	pf := s.pf
	d := 0
sweep:
	for len(cur) > 0 {
		for i, u := range cur {
			if i+prefetchDist < len(cur) {
				pf += f.Prefetch(cur[i+prefetchDist]) // see prefetchDist
			}
			if !visit(int(u), d) {
				break sweep
			}
			if d == maxTTL {
				continue
			}
			for _, w := range f.Neighbors(int(u)) {
				if s.mark[w] != ep {
					s.mark[w] = ep
					next = append(next, w)
				}
			}
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		d++
	}
	s.pf = pf
	s.cur, s.next = cur, next
	return nil
}

// FloodLoad runs flooding from src exactly as the package-level FloodLoad,
// reusing s's buffers for the visited set and frontier.
func (s *Scratch) FloodLoad(f *graph.Frozen, src, maxTTL int, load *Load) error {
	if err := validate(f, src, maxTTL); err != nil {
		return err
	}
	if err := load.check(f); err != nil {
		return err
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	fromCur := append(s.fromCur[:0], -1)
	next, fromNext := s.next[:0], s.fromNext[:0]
	pf := s.pf
	d := 0
	for len(cur) > 0 {
		for i, u := range cur {
			if i+prefetchDist < len(cur) {
				pf += f.Prefetch(cur[i+prefetchDist]) // see prefetchDist
			}
			sender := fromCur[i]
			if d == maxTTL {
				continue
			}
			for _, w := range f.Neighbors(int(u)) {
				if w == sender {
					continue
				}
				load.Forwards[u]++
				load.Receipts[w]++
				if s.mark[w] != ep {
					s.mark[w] = ep
					next = append(next, w)
					fromNext = append(fromNext, u)
				}
			}
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		fromCur, fromNext = fromNext, fromCur[:0]
		d++
	}
	s.pf = pf
	s.cur, s.next, s.fromCur, s.fromNext = cur, next, fromCur, fromNext
	return nil
}

// NormalizedFloodLoad runs NF from src exactly as the package-level
// NormalizedFloodLoad, reusing s's buffers.
func (s *Scratch) NormalizedFloodLoad(f *graph.Frozen, src, maxTTL, kMin int, rng *xrand.RNG, load *Load) error {
	if err := validate(f, src, maxTTL); err != nil {
		return err
	}
	if kMin < 1 {
		return errBadKMin(kMin)
	}
	if err := load.check(f); err != nil {
		return err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	s.mark[src] = ep
	cur := append(s.cur[:0], int32(src))
	fromCur := append(s.fromCur[:0], -1)
	next, fromNext := s.next[:0], s.fromNext[:0]
	pf := s.pf
	d := 0
	for len(cur) > 0 {
		for i, u := range cur {
			if i+prefetchDist < len(cur) {
				pf += f.Prefetch(cur[i+prefetchDist]) // see prefetchDist
			}
			sender := fromCur[i]
			if d == maxTTL {
				continue
			}
			for _, w := range s.nfTargets(f, u, sender, kMin, rng) {
				load.Forwards[u]++
				load.Receipts[w]++
				if s.mark[w] != ep {
					s.mark[w] = ep
					next = append(next, w)
					fromNext = append(fromNext, u)
				}
			}
		}
		if d == maxTTL {
			break
		}
		cur, next = next, cur[:0]
		fromCur, fromNext = fromNext, fromCur[:0]
		d++
	}
	s.pf = pf
	s.cur, s.next, s.fromCur, s.fromNext = cur, next, fromCur, fromNext
	return nil
}
