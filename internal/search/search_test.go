package search

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// star builds a star graph: node 0 is the hub with n-1 leaves.
func star(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// pathN builds a path graph 0-1-...-(n-1).
func pathN(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFloodValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	if _, err := Flood(g, -1, 2); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := Flood(g, 9, 2); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, err := Flood(g, 0, -1); err == nil {
		t.Error("negative TTL should fail")
	}
}

func TestFloodStar(t *testing.T) {
	t.Parallel()
	g := star(t, 6)
	// From the hub: one hop reaches everything.
	res, err := Flood(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] != 1 {
		t.Fatalf("Hits[0] = %d", res.Hits[0])
	}
	if res.Hits[1] != 6 || res.Hits[3] != 6 {
		t.Fatalf("hub flood hits %v", res.Hits)
	}
	// Hub sends 5 messages at depth 0; leaves have degree 1, so after
	// excluding the sender they send nothing.
	if res.Messages[1] != 5 {
		t.Fatalf("Messages[1] = %d, want 5", res.Messages[1])
	}
	if res.Messages[3] != 5 {
		t.Fatalf("Messages[3] = %d, want 5 (leaves forward nothing)", res.Messages[3])
	}

	// From a leaf: τ=1 reaches the hub, τ=2 reaches everything.
	res, err = Flood(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[1] != 2 || res.Hits[2] != 6 {
		t.Fatalf("leaf flood hits %v", res.Hits)
	}
	// Leaf sends 1; hub forwards deg-1 = 4.
	if res.Messages[1] != 1 || res.Messages[2] != 5 {
		t.Fatalf("leaf flood messages %v", res.Messages)
	}
}

func TestFloodPath(t *testing.T) {
	t.Parallel()
	g := pathN(t, 10)
	res, err := Flood(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for tau := 0; tau <= 5; tau++ {
		if res.Hits[tau] != tau+1 {
			t.Fatalf("path hits[%d] = %d, want %d", tau, res.Hits[tau], tau+1)
		}
	}
}

func TestFloodTTLZero(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	res, err := Flood(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] != 1 || res.Messages[0] != 0 {
		t.Fatalf("TTL 0: %+v", res)
	}
}

func TestFloodDisconnected(t *testing.T) {
	t.Parallel()
	g := graph.New(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Flood(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Saturates at component size 2, never reaching N (the CM m=1
	// behavior in §V-B1).
	if res.Hits[10] != 2 {
		t.Fatalf("hits %v", res.Hits)
	}
}

func TestFloodCountsDuplicateMessages(t *testing.T) {
	t.Parallel()
	// Triangle: flooding from node 0 sends 2 messages at depth 0; both
	// depth-1 nodes forward deg-1 = 1 message each (to each other —
	// duplicates that still cost messages).
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Flood(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[1] != 3 {
		t.Fatalf("hits %v", res.Hits)
	}
	if res.Messages[2] != 4 { // 2 + 1 + 1
		t.Fatalf("messages %v, want cumulative 4", res.Messages)
	}
}

func TestFloodMonotone(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 2000, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Flood(g, 42, 15)
	if err != nil {
		t.Fatal(err)
	}
	for tau := 1; tau <= 15; tau++ {
		if res.Hits[tau] < res.Hits[tau-1] {
			t.Fatalf("hits not monotone at τ=%d: %v", tau, res.Hits)
		}
		if res.Messages[tau] < res.Messages[tau-1] {
			t.Fatalf("messages not monotone at τ=%d", tau)
		}
	}
	if res.Hits[15] != 2000 {
		t.Fatalf("flood should sweep the connected PA graph: %d/2000", res.Hits[15])
	}
}

func TestNormalizedFloodValidation(t *testing.T) {
	t.Parallel()
	g := star(t, 4)
	if _, err := NormalizedFlood(g, 0, 2, 0, xrand.New(1)); err == nil {
		t.Error("kMin=0 should fail")
	}
	if _, err := NormalizedFlood(g, 7, 2, 1, xrand.New(1)); err == nil {
		t.Error("bad source should fail")
	}
}

func TestNormalizedFloodFanOut(t *testing.T) {
	t.Parallel()
	// Star from hub with kMin=2: hub forwards to exactly 2 of its 5
	// leaves.
	g := star(t, 6)
	res, err := NormalizedFlood(g, 0, 3, 2, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[1] != 3 { // source + 2 leaves
		t.Fatalf("hits %v", res.Hits)
	}
	if res.Messages[1] != 2 {
		t.Fatalf("messages %v", res.Messages)
	}
}

func TestNormalizedFloodEqualsFloodWhenKMinLarge(t *testing.T) {
	t.Parallel()
	// With kMin >= max degree, NF degenerates to FL exactly.
	g, _, err := gen.PA(gen.PAConfig{N: 500, M: 2, KC: 10}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Flood(g, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NormalizedFlood(g, 3, 8, 10, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for tau := 0; tau <= 8; tau++ {
		if nf.Hits[tau] != fl.Hits[tau] {
			t.Fatalf("τ=%d: NF %d != FL %d", tau, nf.Hits[tau], fl.Hits[tau])
		}
	}
}

func TestNormalizedFloodCoversFewerThanFlood(t *testing.T) {
	t.Parallel()
	// On a hubby graph NF with kMin=1 must trail FL in coverage but use
	// far fewer messages.
	g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 3}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Flood(g, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NormalizedFlood(g, 10, 6, 3, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if nf.Hits[6] >= fl.Hits[6] {
		t.Fatalf("NF hits %d should trail FL hits %d", nf.Hits[6], fl.Hits[6])
	}
	if nf.Messages[6] >= fl.Messages[6] {
		t.Fatalf("NF messages %d should undercut FL %d", nf.Messages[6], fl.Messages[6])
	}
}

func TestNormalizedFloodDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 800, M: 2}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NormalizedFlood(g, 5, 8, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NormalizedFlood(g, 5, 8, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for tau := range a.Hits {
		if a.Hits[tau] != b.Hits[tau] || a.Messages[tau] != b.Messages[tau] {
			t.Fatalf("NF not deterministic at τ=%d", tau)
		}
	}
}

func TestRandomWalkBasics(t *testing.T) {
	t.Parallel()
	g := pathN(t, 5)
	res, err := RandomWalk(g, 0, 10, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// On a path from an end, a non-backtracking walk marches straight:
	// after 4 steps all 5 nodes are visited.
	if res.Hits[4] != 5 {
		t.Fatalf("hits %v", res.Hits)
	}
	if res.Messages[10] != 10 {
		t.Fatalf("messages %v", res.Messages)
	}
}

func TestRandomWalkDeadEndBacktracks(t *testing.T) {
	t.Parallel()
	// Two-node graph: the walker bounces between them forever rather
	// than dying.
	g := pathN(t, 2)
	res, err := RandomWalk(g, 0, 6, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[6] != 2 {
		t.Fatalf("hits %v", res.Hits)
	}
}

func TestRandomWalkIsolatedSource(t *testing.T) {
	t.Parallel()
	g := graph.New(3)
	res, err := RandomWalk(g, 0, 5, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[5] != 1 {
		t.Fatalf("isolated walk hits %v", res.Hits)
	}
}

func TestRandomWalkHitsBounded(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 1000, M: 2}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RandomWalk(g, 0, 500, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for tau := 1; tau <= 500; tau++ {
		if res.Hits[tau] < res.Hits[tau-1] || res.Hits[tau] > tau+1 {
			t.Fatalf("hits invariant broken at t=%d: %d", tau, res.Hits[tau])
		}
	}
}

func TestRandomWalkWithNFBudget(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 2000, M: 2, KC: 40}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rw, nf, err := RandomWalkWithNFBudget(g, 17, 10, 2, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	// The RW result reports exactly the NF message budget per τ.
	for tau := 0; tau <= 10; tau++ {
		if rw.Messages[tau] != nf.Messages[tau] {
			t.Fatalf("τ=%d: RW budget %d != NF messages %d", tau, rw.Messages[tau], nf.Messages[tau])
		}
	}
	// Same message budget: RW coverage must not exceed budget+1 nodes.
	for tau := 0; tau <= 10; tau++ {
		if rw.Hits[tau] > nf.Messages[tau]+1 {
			t.Fatalf("τ=%d: RW hits %d exceed budget %d", tau, rw.Hits[tau], nf.Messages[tau])
		}
	}
	// NF does better averaging than a single walk (§V-B1: "NF does
	// better averaging of search possibilities"); with equal budgets NF
	// should discover at least as many nodes at the horizon.
	if rw.Hits[10] > nf.Hits[10] {
		t.Logf("RW beat NF this draw (possible on some topologies): rw=%d nf=%d", rw.Hits[10], nf.Hits[10])
	}
}

func TestResultClamping(t *testing.T) {
	t.Parallel()
	r := Result{Hits: []int{1, 3, 7}, Messages: []int{0, 2, 5}}
	if r.HitsAt(-1) != 1 || r.HitsAt(0) != 1 || r.HitsAt(2) != 7 || r.HitsAt(99) != 7 {
		t.Fatal("HitsAt clamping broken")
	}
	if r.MessagesAt(99) != 5 || r.MessagesAt(-3) != 0 {
		t.Fatal("MessagesAt clamping broken")
	}
	var empty Result
	if empty.HitsAt(3) != 0 || empty.MessagesAt(3) != 0 {
		t.Fatal("empty result clamping broken")
	}
}

func BenchmarkFloodPA10k(b *testing.B) {
	g, _, err := gen.PA(gen.PAConfig{N: 10000, M: 2}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flood(g, rng.Intn(g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizedFloodPA10k(b *testing.B) {
	g, _, err := gen.PA(gen.PAConfig{N: 10000, M: 2}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NormalizedFlood(g, rng.Intn(g.N()), 10, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}
