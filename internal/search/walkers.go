package search

// Extensions beyond the paper's three core algorithms: multiple parallel
// random walkers (the paper repeatedly notes "multiple RWs would perform
// more similar to NF", §V-B1) and delivery-time measurement for locating a
// specific target, which backs the scaling laws the paper quotes:
// T_N = log(N) for flooding (Eq. 6) and T_N ~ N^0.79 for random walks on
// γ≈2.1 scale-free networks (Eq. 7, from Adamic et al.).
//
// All walkers take the CSR *graph.Frozen and advance via the shared Step
// primitive, so each hop is a flat-array neighbor pick with no per-hop
// bounds validation.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// KRandomWalks runs `walkers` independent non-backtracking random walks
// from src, each taking `steps` hops. Hits[t] counts distinct nodes seen
// by any walker within its first t steps; Messages[t] = walkers·t. One
// k-walker search with k·steps total messages is the paper's "multiple
// RWs" alternative to a single long walk.
//
// It runs on a fresh Scratch per call; query sweeps should use
// Scratch.KRandomWalks with a reused scratch.
func KRandomWalks(f *graph.Frozen, src, walkers, steps int, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.KRandomWalks(f, src, walkers, steps, rng)
}

// Delivery is the outcome of a targeted search.
type Delivery struct {
	// Found reports whether the target was reached within the budget.
	Found bool
	// Time is the delivery time: hops for flooding (the shortest-path
	// length, §V-A1), steps for random walks.
	Time int
	// Messages is the total transmissions used up to delivery.
	Messages int
}

// FloodDelivery measures flooding's delivery time to a specific target:
// the number of intermediate links traversed, i.e. the shortest-path
// length (paper §V-A1, Eq. 6), along with the messages flooded until the
// target's BFS depth completed.
//
// It runs on a fresh Scratch per call; delivery sweeps should use
// Scratch.FloodDelivery with a reused scratch.
func FloodDelivery(f *graph.Frozen, src, target, maxTTL int) (Delivery, error) {
	var s Scratch
	return s.FloodDelivery(f, src, target, maxTTL)
}

// RandomWalkDelivery measures a single walker's delivery time to a target:
// the number of steps until first arrival (Eq. 7 predicts scaling ~N^0.79
// on γ≈2.1 networks), bounded by maxSteps.
func RandomWalkDelivery(f *graph.Frozen, src, target, maxSteps int, rng *xrand.RNG) (Delivery, error) {
	if err := validate(f, src, maxSteps); err != nil {
		return Delivery{}, err
	}
	if target < 0 || target >= f.N() {
		return Delivery{}, fmt.Errorf("%w: target %d", ErrBadSource, target)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	if target == src {
		return Delivery{Found: true}, nil
	}
	cur, prev := src, -1
	for t := 1; t <= maxSteps; t++ {
		next, ok := Step(f, cur, prev, rng)
		if !ok {
			break
		}
		prev, cur = cur, next
		if cur == target {
			return Delivery{Found: true, Time: t, Messages: t}, nil
		}
	}
	return Delivery{Found: false, Time: maxSteps, Messages: maxSteps}, nil
}
