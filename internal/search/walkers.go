package search

// Extensions beyond the paper's three core algorithms: multiple parallel
// random walkers (the paper repeatedly notes "multiple RWs would perform
// more similar to NF", §V-B1) and delivery-time measurement for locating a
// specific target, which backs the scaling laws the paper quotes:
// T_N = log(N) for flooding (Eq. 6) and T_N ~ N^0.79 for random walks on
// γ≈2.1 scale-free networks (Eq. 7, from Adamic et al.).
//
// All walkers take the CSR *graph.Frozen and advance via the shared Step
// primitive, so each hop is a flat-array neighbor pick with no per-hop
// bounds validation.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// KRandomWalks runs `walkers` independent non-backtracking random walks
// from src, each taking `steps` hops. Hits[t] counts distinct nodes seen
// by any walker within its first t steps; Messages[t] = walkers·t. One
// k-walker search with k·steps total messages is the paper's "multiple
// RWs" alternative to a single long walk.
func KRandomWalks(f *graph.Frozen, src, walkers, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if walkers < 1 {
		return Result{}, fmt.Errorf("search: walkers %d must be >= 1", walkers)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := Result{
		Hits:     make([]int, steps+1),
		Messages: make([]int, steps+1),
	}
	// firstSeen[v] is the earliest per-walker step at which v was
	// reached; -1 means never.
	firstSeen := make([]int32, f.N())
	for i := range firstSeen {
		firstSeen[i] = -1
	}
	firstSeen[src] = 0
	for w := 0; w < walkers; w++ {
		cur, prev := src, -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break // isolated source
			}
			prev, cur = cur, next
			if firstSeen[cur] < 0 || int32(t) < firstSeen[cur] {
				firstSeen[cur] = int32(t)
			}
		}
	}
	for _, t := range firstSeen {
		if t >= 0 {
			res.Hits[t]++
		}
	}
	for t := 1; t <= steps; t++ {
		res.Hits[t] += res.Hits[t-1]
		res.Messages[t] = walkers * t
	}
	return res, nil
}

// Delivery is the outcome of a targeted search.
type Delivery struct {
	// Found reports whether the target was reached within the budget.
	Found bool
	// Time is the delivery time: hops for flooding (the shortest-path
	// length, §V-A1), steps for random walks.
	Time int
	// Messages is the total transmissions used up to delivery.
	Messages int
}

// FloodDelivery measures flooding's delivery time to a specific target:
// the number of intermediate links traversed, i.e. the shortest-path
// length (paper §V-A1, Eq. 6), along with the messages flooded until the
// target's BFS depth completed.
func FloodDelivery(f *graph.Frozen, src, target, maxTTL int) (Delivery, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Delivery{}, err
	}
	if target < 0 || target >= f.N() {
		return Delivery{}, fmt.Errorf("%w: target %d", ErrBadSource, target)
	}
	if target == src {
		return Delivery{Found: true}, nil
	}
	var s Scratch
	res, err := s.Flood(f, src, maxTTL)
	if err != nil {
		return Delivery{}, err
	}
	dist := f.BFS(src)
	d := int(dist[target])
	if d < 0 || d > maxTTL {
		return Delivery{Found: false, Time: maxTTL, Messages: res.MessagesAt(maxTTL)}, nil
	}
	return Delivery{Found: true, Time: d, Messages: res.MessagesAt(d)}, nil
}

// RandomWalkDelivery measures a single walker's delivery time to a target:
// the number of steps until first arrival (Eq. 7 predicts scaling ~N^0.79
// on γ≈2.1 networks), bounded by maxSteps.
func RandomWalkDelivery(f *graph.Frozen, src, target, maxSteps int, rng *xrand.RNG) (Delivery, error) {
	if err := validate(f, src, maxSteps); err != nil {
		return Delivery{}, err
	}
	if target < 0 || target >= f.N() {
		return Delivery{}, fmt.Errorf("%w: target %d", ErrBadSource, target)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	if target == src {
		return Delivery{Found: true}, nil
	}
	cur, prev := src, -1
	for t := 1; t <= maxSteps; t++ {
		next, ok := Step(f, cur, prev, rng)
		if !ok {
			break
		}
		prev, cur = cur, next
		if cur == target {
			return Delivery{Found: true, Time: t, Messages: t}, nil
		}
	}
	return Delivery{Found: false, Time: maxSteps, Messages: maxSteps}, nil
}
