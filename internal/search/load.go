package search

// Per-node load accounting. The paper motivates hard cutoffs by load
// fairness but measures topology (degree) only; degree is a proxy for the
// real cost, which is query-handling work. These variants of the three
// search algorithms charge every transmission to the node that performs
// it, so the fairness experiment can compare the Gini of actual search
// load with the Gini of degrees under different cutoffs.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Load accumulates per-node work across any number of searches.
type Load struct {
	// Forwards[v] counts query transmissions node v performed.
	Forwards []int64
	// Receipts[v] counts query copies node v received (including
	// suppressed duplicates — receiving costs work even when the copy is
	// dropped).
	Receipts []int64
}

// NewLoad returns a zeroed accumulator for an n-node graph.
func NewLoad(n int) *Load {
	return &Load{Forwards: make([]int64, n), Receipts: make([]int64, n)}
}

// Total returns the summed forwards (== total messages charged).
func (l *Load) Total() int64 {
	var t int64
	for _, f := range l.Forwards {
		t += f
	}
	return t
}

// Work returns per-node total work (forwards + receipts) as ints, the
// shape stats.Gini and stats.TopShare consume.
func (l *Load) Work() []int {
	out := make([]int, len(l.Forwards))
	for v := range out {
		out[v] = int(l.Forwards[v] + l.Receipts[v])
	}
	return out
}

func (l *Load) check(g *graph.Graph) error {
	if len(l.Forwards) != g.N() {
		return fmt.Errorf("search: load sized for %d nodes, graph has %d", len(l.Forwards), g.N())
	}
	return nil
}

// FloodLoad runs flooding from src exactly as Flood does, charging each
// transmission to its sender and each receipt (duplicate or not) to its
// receiver.
func FloodLoad(g *graph.Graph, src, maxTTL int, load *Load) error {
	if err := validate(g, src, maxTTL); err != nil {
		return err
	}
	if err := load.check(g); err != nil {
		return err
	}
	type item struct {
		node int32
		from int32
	}
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []item{{node: int32(src), from: -1}}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		du := int(depth[it.node])
		if du == maxTTL {
			continue
		}
		for _, v := range g.Neighbors(int(it.node)) {
			if v == it.from {
				continue
			}
			load.Forwards[it.node]++
			load.Receipts[v]++
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, item{node: v, from: it.node})
			}
		}
	}
	return nil
}

// NormalizedFloodLoad runs NF from src as NormalizedFlood does, with the
// same charging rule as FloodLoad.
func NormalizedFloodLoad(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG, load *Load) error {
	if err := validate(g, src, maxTTL); err != nil {
		return err
	}
	if kMin < 1 {
		return fmt.Errorf("%w: %d", ErrBadKMin, kMin)
	}
	if err := load.check(g); err != nil {
		return err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	type item struct {
		node int32
		from int32
	}
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []item{{node: int32(src), from: -1}}
	scratch := make([]int32, 0, 64)
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		du := int(depth[it.node])
		if du == maxTTL {
			continue
		}
		scratch = scratch[:0]
		for _, v := range g.Neighbors(int(it.node)) {
			if v != it.from {
				scratch = append(scratch, v)
			}
		}
		targets := scratch
		if len(scratch) > kMin {
			for i := 0; i < kMin; i++ {
				j := i + rng.Intn(len(scratch)-i)
				scratch[i], scratch[j] = scratch[j], scratch[i]
			}
			targets = scratch[:kMin]
		}
		for _, v := range targets {
			load.Forwards[it.node]++
			load.Receipts[v]++
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, item{node: v, from: it.node})
			}
		}
	}
	return nil
}

// RandomWalkLoad runs a non-backtracking walk from src as RandomWalk
// does, charging each hop to the node that forwards the query.
func RandomWalkLoad(g *graph.Graph, src, steps int, rng *xrand.RNG, load *Load) error {
	if err := validate(g, src, steps); err != nil {
		return err
	}
	if err := load.check(g); err != nil {
		return err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := g.RandomNeighborExcluding(cur, prev, rng)
		if next < 0 {
			if prev < 0 {
				return nil
			}
			next = prev
		}
		load.Forwards[cur]++
		load.Receipts[next]++
		prev, cur = cur, next
	}
	return nil
}
