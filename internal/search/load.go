package search

// Per-node load accounting. The paper motivates hard cutoffs by load
// fairness but measures topology (degree) only; degree is a proxy for the
// real cost, which is query-handling work. These variants of the three
// search algorithms charge every transmission to the node that performs
// it, so the fairness experiment can compare the Gini of actual search
// load with the Gini of degrees under different cutoffs.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Load accumulates per-node work across any number of searches.
type Load struct {
	// Forwards[v] counts query transmissions node v performed.
	Forwards []int64
	// Receipts[v] counts query copies node v received (including
	// suppressed duplicates — receiving costs work even when the copy is
	// dropped).
	Receipts []int64
}

// NewLoad returns a zeroed accumulator for an n-node graph.
func NewLoad(n int) *Load {
	return &Load{Forwards: make([]int64, n), Receipts: make([]int64, n)}
}

// Total returns the summed forwards (== total messages charged).
func (l *Load) Total() int64 {
	var t int64
	for _, f := range l.Forwards {
		t += f
	}
	return t
}

// Merge adds other's counters into l. Both must be sized for the same
// graph. Integer addition is commutative and associative, so merging
// per-shard accumulators in any order yields identical totals — the
// property the sharded fairness sweeps rely on for bit-for-bit
// reproducibility.
func (l *Load) Merge(other *Load) error {
	if len(l.Forwards) != len(other.Forwards) {
		return fmt.Errorf("search: merging loads sized %d and %d", len(l.Forwards), len(other.Forwards))
	}
	for v := range l.Forwards {
		l.Forwards[v] += other.Forwards[v]
		l.Receipts[v] += other.Receipts[v]
	}
	return nil
}

// Work returns per-node total work (forwards + receipts) as ints, the
// shape stats.Gini and stats.TopShare consume.
func (l *Load) Work() []int {
	out := make([]int, len(l.Forwards))
	for v := range out {
		out[v] = int(l.Forwards[v] + l.Receipts[v])
	}
	return out
}

func (l *Load) check(f *graph.Frozen) error {
	if len(l.Forwards) != f.N() {
		return fmt.Errorf("search: load sized for %d nodes, graph has %d", len(l.Forwards), f.N())
	}
	return nil
}

// FloodLoad runs flooding from src exactly as Flood does, charging each
// transmission to its sender and each receipt (duplicate or not) to its
// receiver. Hot paths should use Scratch.FloodLoad instead.
func FloodLoad(f *graph.Frozen, src, maxTTL int, load *Load) error {
	var s Scratch
	return s.FloodLoad(f, src, maxTTL, load)
}

// NormalizedFloodLoad runs NF from src as NormalizedFlood does, with the
// same charging rule as FloodLoad. Hot paths should use
// Scratch.NormalizedFloodLoad instead.
func NormalizedFloodLoad(f *graph.Frozen, src, maxTTL, kMin int, rng *xrand.RNG, load *Load) error {
	var s Scratch
	return s.NormalizedFloodLoad(f, src, maxTTL, kMin, rng, load)
}

// RandomWalkLoad runs a non-backtracking walk from src as RandomWalk
// does, charging each hop to the node that forwards the query.
func RandomWalkLoad(f *graph.Frozen, src, steps int, rng *xrand.RNG, load *Load) error {
	if err := validate(f, src, steps); err != nil {
		return err
	}
	if err := load.check(f); err != nil {
		return err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next, ok := Step(f, cur, prev, rng)
		if !ok {
			return nil
		}
		load.Forwards[cur]++
		load.Receipts[next]++
		prev, cur = cur, next
	}
	return nil
}
