package search

import (
	"sync"
	"testing"

	"scalefree/internal/xrand"
)

// --- Allocation regression -------------------------------------------

// The strategy kernels must match FL/NF/RW: after warmup, repeated
// searches on one topology allocate nothing (ISSUE 3 acceptance: the
// strategies spec is allocation-free end to end).

func TestScratchKRandomWalksZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(43)
	if _, err := s.KRandomWalks(f, 17, 8, 500, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.KRandomWalks(f, 17, 8, 500, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("KRandomWalks with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchHighDegreeWalkZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(47)
	if _, err := s.HighDegreeWalk(f, 17, 500, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.HighDegreeWalk(f, 17, 500, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("HighDegreeWalk with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchProbabilisticFloodZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(53)
	// Warmup: p=1 is a full flood, sizing the queues to their maximum.
	if _, err := s.ProbabilisticFlood(f, 17, 30, 1, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.ProbabilisticFlood(f, 17, 8, 0.5, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProbabilisticFlood with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchHybridSearchZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(59)
	// Warmup twice: the first call sizes flood queues, the walker seen
	// list, and the start buffer; the second confirms steady state exists.
	for i := 0; i < 2; i++ {
		if _, err := s.HybridSearch(f, 17, 2, 8, 500, rng); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.HybridSearch(f, 17, 2, 8, 500, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("HybridSearch with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchFloodDeliveryZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	if _, err := s.FloodDelivery(f, 17, 1999, 30); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.FloodDelivery(f, 17, 1999, 8); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FloodDelivery with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

// --- Shared-Frozen concurrency ---------------------------------------

// TestSharedFrozenConcurrentKernels hammers ONE *graph.Frozen from 16
// goroutines, each running every kernel on its own Scratch and RNG stream.
// Frozen is immutable and documented safe for concurrent readers — this is
// the contract the source-sharded scheduler in internal/sim leans on. Run
// under -race in CI. Each goroutine's aggregate is compared against a
// serial replay of the same streams, so the test also catches cross-shard
// state leaks, not just data races.
func TestSharedFrozenConcurrentKernels(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	const goroutines = 16
	run := func(id int, s *Scratch) (sum int) {
		rng := xrand.NewStream(99, uint64(id))
		src := rng.Intn(f.N())
		flood, err := s.Flood(f, src, 6)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += flood.HitsAt(6)
		nf, err := s.NormalizedFlood(f, src, 6, 2, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += nf.HitsAt(6)
		rw, err := s.RandomWalk(f, src, 300, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += rw.HitsAt(300)
		kw, err := s.KRandomWalks(f, src, 4, 100, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += kw.HitsAt(100)
		hd, err := s.HighDegreeWalk(f, src, 200, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += hd.HitsAt(200)
		pf, err := s.ProbabilisticFlood(f, src, 6, 0.5, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += pf.HitsAt(6)
		hy, err := s.HybridSearch(f, src, 2, 4, 100, rng)
		if err != nil {
			t.Error(err)
			return 0
		}
		sum += hy.HitsAt(2 + 100)
		return sum
	}

	want := make([]int, goroutines)
	serial := NewScratch(f.N())
	for id := range want {
		want[id] = run(id, serial)
	}

	got := make([]int, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for id := 0; id < goroutines; id++ {
		go func(id int) {
			defer wg.Done()
			got[id] = run(id, NewScratch(0))
		}(id)
	}
	wg.Wait()
	for id := range want {
		if got[id] != want[id] {
			t.Fatalf("goroutine %d: concurrent aggregate %d != serial %d", id, got[id], want[id])
		}
	}
}

// --- Benchmarks --------------------------------------------------------

// Scratch strategy kernels: the 0 allocs/op record for BENCH_PR3.json
// (compare the package-level *PA10k benchmarks, which allocate per call).

func BenchmarkScratchKRandomWalks(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(61)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KRandomWalks(f, i%f.N(), 8, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchHighDegreeWalk(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(67)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HighDegreeWalk(f, i%f.N(), 500, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchProbabilisticFlood(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(71)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ProbabilisticFlood(f, i%f.N(), 8, 0.5, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchHybridSearch(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(73)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HybridSearch(f, i%f.N(), 2, 8, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchFloodDelivery(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FloodDelivery(f, i%f.N(), (i+1000)%f.N(), 8); err != nil {
			b.Fatal(err)
		}
	}
}
