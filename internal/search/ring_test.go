package search

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func TestExpandingRingFindsNearTarget(t *testing.T) {
	t.Parallel()
	g := pathN(t, 20)
	res, err := ExpandingRing(g.Freeze(), 0, func(v int) bool { return v == 2 }, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.TTL != 2 {
		t.Fatalf("result %+v, want found at ring 2", res)
	}
	if res.Rounds != 2 { // rings 1, 2
		t.Fatalf("rounds %d, want 2", res.Rounds)
	}
}

func TestExpandingRingSelfTarget(t *testing.T) {
	t.Parallel()
	g := pathN(t, 3)
	res, err := ExpandingRing(g.Freeze(), 1, func(v int) bool { return v == 1 }, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("self target %+v", res)
	}
}

func TestExpandingRingMiss(t *testing.T) {
	t.Parallel()
	g := pathN(t, 20)
	res, err := ExpandingRing(g.Freeze(), 0, func(v int) bool { return false }, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found nonexistent target: %+v", res)
	}
	if res.Rounds != 4 { // 1,2,4,8
		t.Fatalf("rounds %d, want 4", res.Rounds)
	}
}

func TestExpandingRingCustomSchedule(t *testing.T) {
	t.Parallel()
	g := pathN(t, 20)
	res, err := ExpandingRing(g.Freeze(), 0, func(v int) bool { return v == 5 }, []int{3, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.TTL != 10 || res.Rounds != 2 {
		t.Fatalf("custom schedule %+v", res)
	}
}

func TestExpandingRingValidation(t *testing.T) {
	t.Parallel()
	g := pathN(t, 5)
	if _, err := ExpandingRing(g.Freeze(), 0, nil, nil, 4); err == nil {
		t.Error("nil predicate should fail")
	}
	if _, err := ExpandingRing(g.Freeze(), -1, func(int) bool { return false }, nil, 4); err == nil {
		t.Error("bad source should fail")
	}
	if _, err := ExpandingRing(g.Freeze(), 0, func(int) bool { return false }, []int{-1}, 4); err == nil {
		t.Error("negative schedule entry should fail")
	}
}

func TestExpandingRingSavesMessagesOnPopularContent(t *testing.T) {
	t.Parallel()
	// The point of expanding ring (Lv et al.): for nearby/popular content
	// it uses far fewer messages than a single max-TTL flood.
	g, _, err := gen.PA(gen.PAConfig{N: 5000, M: 2, KC: 40}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	// Popular content: 5% of nodes hold it.
	holder := make([]bool, g.N())
	for i := 0; i < g.N()/20; i++ {
		holder[rng.Intn(g.N())] = true
	}
	const maxTTL = 8
	var ringMsgs, floodMsgs int
	for trial := 0; trial < 20; trial++ {
		src := rng.Intn(g.N())
		res, err := ExpandingRing(g.Freeze(), src, func(v int) bool { return holder[v] }, nil, maxTTL)
		if err != nil {
			t.Fatal(err)
		}
		ringMsgs += res.Messages
		fl, err := Flood(g, src, maxTTL)
		if err != nil {
			t.Fatal(err)
		}
		floodMsgs += fl.MessagesAt(maxTTL)
	}
	if ringMsgs >= floodMsgs/2 {
		t.Fatalf("expanding ring (%d msgs) should save >2x vs full flood (%d msgs)", ringMsgs, floodMsgs)
	}
}
