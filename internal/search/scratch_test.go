package search

import (
	"math"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// scratchTestGraph builds the shared search topology: a connected PA graph
// large enough that floods exercise deep frontiers and hubs.
func scratchTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: 2000, M: 2, KC: 40}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// scratchTestFrozen is the CSR snapshot of scratchTestGraph, the form the
// Scratch kernels consume.
func scratchTestFrozen(t testing.TB) *graph.Frozen {
	return scratchTestGraph(t).Freeze()
}

func sameResult(t *testing.T, name string, a, b Result) {
	t.Helper()
	if len(a.Hits) != len(b.Hits) || len(a.Messages) != len(b.Messages) {
		t.Fatalf("%s: length mismatch: hits %d vs %d, messages %d vs %d",
			name, len(a.Hits), len(b.Hits), len(a.Messages), len(b.Messages))
	}
	for i := range a.Hits {
		if a.Hits[i] != b.Hits[i] {
			t.Fatalf("%s: Hits[%d] = %d, want %d", name, i, b.Hits[i], a.Hits[i])
		}
	}
	for i := range a.Messages {
		if a.Messages[i] != b.Messages[i] {
			t.Fatalf("%s: Messages[%d] = %d, want %d", name, i, b.Messages[i], a.Messages[i])
		}
	}
}

// TestScratchMatchesPackageFunctions pins the contract that a reused
// Scratch produces bit-identical results to the package-level functions
// (same traversal order, same RNG consumption), across many consecutive
// searches on one scratch.
func TestScratchMatchesPackageFunctions(t *testing.T) {
	t.Parallel()
	g := scratchTestGraph(t)
	f := g.Freeze()
	s := NewScratch(0) // deliberately unsized: buffers must grow on demand
	for _, src := range []int{0, 7, 99, 1234} {
		a, err := Flood(g, src, 6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Flood(f, src, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "flood", a, b)

		an, err := NormalizedFlood(g, src, 6, 2, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		bn, err := s.NormalizedFlood(f, src, 6, 2, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "nf", an, bn)

		aw, err := RandomWalk(g, src, 500, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		bw, err := s.RandomWalk(f, src, 500, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "rw", aw, bw)

		arw, anf, err := RandomWalkWithNFBudget(g, src, 6, 2, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		brw, bnf, err := s.RandomWalkWithNFBudget(f, src, 6, 2, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "rw-budget/rw", arw, brw)
		sameResult(t, "rw-budget/nf", anf, bnf)
	}
}

// TestScratchLoadMatchesPackageFunctions does the same for the
// load-charging variants.
func TestScratchLoadMatchesPackageFunctions(t *testing.T) {
	t.Parallel()
	g := scratchTestGraph(t)
	f := g.Freeze()
	s := NewScratch(f.N())
	for _, src := range []int{3, 42} {
		la, lb := NewLoad(g.N()), NewLoad(g.N())
		if err := FloodLoad(f, src, 5, la); err != nil {
			t.Fatal(err)
		}
		if err := s.FloodLoad(f, src, 5, lb); err != nil {
			t.Fatal(err)
		}
		for v := range la.Forwards {
			if la.Forwards[v] != lb.Forwards[v] || la.Receipts[v] != lb.Receipts[v] {
				t.Fatalf("flood load diverges at node %d", v)
			}
		}

		la, lb = NewLoad(g.N()), NewLoad(g.N())
		if err := NormalizedFloodLoad(f, src, 5, 2, xrand.New(13), la); err != nil {
			t.Fatal(err)
		}
		if err := s.NormalizedFloodLoad(f, src, 5, 2, xrand.New(13), lb); err != nil {
			t.Fatal(err)
		}
		for v := range la.Forwards {
			if la.Forwards[v] != lb.Forwards[v] || la.Receipts[v] != lb.Receipts[v] {
				t.Fatalf("nf load diverges at node %d", v)
			}
		}
	}
}

// TestFloodVisitMatchesBFSWithin pins FloodVisit to graph.BFSWithin: same
// nodes, same depths, same breadth-first order, same early-stop contract.
func TestFloodVisitMatchesBFSWithin(t *testing.T) {
	t.Parallel()
	g := scratchTestGraph(t)
	f := g.Freeze()
	s := NewScratch(0)
	type visitRec struct{ node, depth int }
	for _, ttl := range []int{0, 1, 3} {
		var want, got []visitRec
		g.BFSWithin(50, ttl, func(node, depth int) bool {
			want = append(want, visitRec{node, depth})
			return true
		})
		if err := s.FloodVisit(f, 50, ttl, func(node, depth int) bool {
			got = append(got, visitRec{node, depth})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("ttl=%d: visited %d nodes, want %d", ttl, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("ttl=%d: visit %d = %+v, want %+v", ttl, i, got[i], want[i])
			}
		}
	}
	// Early stop after 3 visits.
	count := 0
	if err := s.FloodVisit(f, 50, 3, func(node, depth int) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("early stop visited %d nodes, want 3", count)
	}
	// Errors propagate.
	if err := s.FloodVisit(f, -1, 3, func(int, int) bool { return true }); err == nil {
		t.Fatal("bad source should error")
	}
}

// TestScratchValidation checks the scratch methods reject bad input like
// the package functions do.
func TestScratchValidation(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	if _, err := s.Flood(f, -1, 3); err == nil {
		t.Fatal("bad source should error")
	}
	if _, err := s.Flood(f, 0, -1); err == nil {
		t.Fatal("negative TTL should error")
	}
	if _, err := s.NormalizedFlood(f, 0, 3, 0, xrand.New(1)); err == nil {
		t.Fatal("kMin=0 should error")
	}
	if _, err := s.RandomWalk(f, f.N(), 3, xrand.New(1)); err == nil {
		t.Fatal("out-of-range source should error")
	}
}

// TestScratchEpochWrap forces the epoch counter to its int32 ceiling and
// checks the visited marks are rebuilt rather than misread.
func TestScratchEpochWrap(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	want, err := s.Flood(f, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := append([]int(nil), want.Hits...)
	s.epoch = math.MaxInt32 // next newEpoch must clear and restart
	got, err := s.Flood(f, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantHits {
		if got.Hits[i] != wantHits[i] {
			t.Fatalf("after epoch wrap Hits[%d] = %d, want %d", i, got.Hits[i], wantHits[i])
		}
	}
}

// TestScratchGrowsAcrossGraphs checks one scratch can serve graphs of
// different sizes back to back (the per-worker reuse pattern in
// internal/sim).
func TestScratchGrowsAcrossGraphs(t *testing.T) {
	t.Parallel()
	small, _, err := gen.PA(gen.PAConfig{N: 200, M: 2}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	big := scratchTestFrozen(t)
	s := NewScratch(0)
	for _, f := range []*graph.Frozen{small.Freeze(), big, small.Freeze(), big} {
		res, err := s.Flood(f, 0, 30)
		if err != nil {
			t.Fatal(err)
		}
		if res.HitsAt(30) != f.N() {
			// Both graphs are connected PA graphs; a 30-hop flood covers
			// them entirely.
			t.Fatalf("flood on n=%d covered %d nodes", f.N(), res.HitsAt(30))
		}
	}
}

// --- Allocation regression -------------------------------------------

// The whole point of Scratch: after warmup, repeated searches on one
// topology allocate nothing.

func TestScratchFloodZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	// Warmup: a full-coverage flood grows the frontier queue to its
	// maximum (N) and sizes the result arena.
	if _, err := s.Flood(f, 17, 30); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Flood(f, 17, 8); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Flood with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchRandomWalkZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(23)
	if _, err := s.RandomWalk(f, 17, 2000, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.RandomWalk(f, 17, 2000, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RandomWalk with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchNormalizedFloodZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	rng := xrand.New(29)
	// Warmup: a full flood sizes the queues to N, and one NF pass sizes
	// the candidate buffer; afterwards no NF search can need more.
	if _, err := s.Flood(f, 17, 30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.NormalizedFlood(f, 17, 8, 2, rng); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.NormalizedFlood(f, 17, 8, 2, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("NormalizedFlood with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchFloodVisitZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	visit := func(node, depth int) bool { return true }
	if err := s.FloodVisit(f, 17, 30, visit); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.FloodVisit(f, 17, 8, visit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FloodVisit with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestScratchLoadKernelsZeroAllocs(t *testing.T) {
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	load := NewLoad(f.N())
	rng := xrand.New(41)
	if err := s.FloodLoad(f, 17, 30, load); err != nil {
		t.Fatal(err)
	}
	if err := s.NormalizedFloodLoad(f, 17, 8, 2, rng, load); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.FloodLoad(f, 17, 6, load); err != nil {
			t.Fatal(err)
		}
		if err := s.NormalizedFloodLoad(f, 17, 8, 2, rng, load); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("load kernels with reused scratch: %.1f allocs/op, want 0", allocs)
	}
}

// --- Benchmarks --------------------------------------------------------

// The scratch/fresh pairs below are the before/after record for the
// allocation-free kernels; run with `go test -bench=Scratch -benchmem`.

func BenchmarkScratchFlood(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Flood(f, i%f.N(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreshFlood(b *testing.B) {
	g := scratchTestGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flood(g, i%g.N(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchNormalizedFlood(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NormalizedFlood(f, i%f.N(), 8, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFreshNormalizedFlood(b *testing.B) {
	g := scratchTestGraph(b)
	rng := xrand.New(31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NormalizedFlood(g, i%g.N(), 8, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScratchRandomWalkNFBudget(b *testing.B) {
	f := scratchTestFrozen(b)
	s := NewScratch(f.N())
	rng := xrand.New(37)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.RandomWalkWithNFBudget(f, i%f.N(), 8, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}
