package search

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func TestKRandomWalksValidation(t *testing.T) {
	t.Parallel()
	g := pathN(t, 4)
	if _, err := KRandomWalks(g.Freeze(), 0, 0, 5, xrand.New(1)); err == nil {
		t.Error("walkers=0 should fail")
	}
	if _, err := KRandomWalks(g.Freeze(), -1, 2, 5, xrand.New(1)); err == nil {
		t.Error("bad source should fail")
	}
}

func TestKRandomWalksSingleEqualsRandomWalkShape(t *testing.T) {
	t.Parallel()
	// One walker must satisfy the same invariants as RandomWalk: hits
	// monotone, bounded by steps+1.
	g, _, err := gen.PA(gen.PAConfig{N: 1000, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := KRandomWalks(g.Freeze(), 0, 1, 300, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for tau := 1; tau <= 300; tau++ {
		if res.Hits[tau] < res.Hits[tau-1] || res.Hits[tau] > tau+1 {
			t.Fatalf("invariant broken at %d: %d", tau, res.Hits[tau])
		}
	}
}

func TestKRandomWalksMoreWalkersMoreCoverage(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 2, KC: 40}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	one, err := KRandomWalks(g.Freeze(), 5, 1, 200, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := KRandomWalks(g.Freeze(), 5, 8, 200, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if eight.Hits[200] <= one.Hits[200] {
		t.Fatalf("8 walkers (%d) should out-cover 1 walker (%d)", eight.Hits[200], one.Hits[200])
	}
	if eight.Messages[200] != 8*200 {
		t.Fatalf("messages %d, want 1600", eight.Messages[200])
	}
}

func TestKRandomWalksApproachNF(t *testing.T) {
	t.Parallel()
	// §V-B1: "multiple RWs would perform more similar to NF". With the
	// same message budget, k walkers should close most of the gap between
	// a single walk and NF.
	g, _, err := gen.PA(gen.PAConfig{N: 4000, M: 2, KC: 40}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	const ttl, kMin = 8, 2
	var nfHits, oneHits, multiHits float64
	const sources = 20
	fz := g.Freeze()
	for s := 0; s < sources; s++ {
		src := rng.Intn(g.N())
		nf, err := NormalizedFlood(g, src, ttl, kMin, rng)
		if err != nil {
			t.Fatal(err)
		}
		budget := nf.Messages[ttl]
		single, err := RandomWalk(g, src, budget, rng)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := KRandomWalks(fz, src, 8, budget/8, rng)
		if err != nil {
			t.Fatal(err)
		}
		nfHits += float64(nf.HitsAt(ttl))
		oneHits += float64(single.HitsAt(budget))
		multiHits += float64(multi.HitsAt(budget / 8))
	}
	if multiHits < oneHits*0.8 {
		t.Fatalf("multiple walkers (%.0f) collapsed vs single walk (%.0f)", multiHits, oneHits)
	}
	t.Logf("hits at equal budget: NF=%.0f, 8-walkers=%.0f, single=%.0f", nfHits, multiHits, oneHits)
}

func TestFloodDelivery(t *testing.T) {
	t.Parallel()
	g := pathN(t, 8)
	d, err := FloodDelivery(g.Freeze(), 0, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Found || d.Time != 5 {
		t.Fatalf("delivery %+v, want found at 5 hops", d)
	}
	// Out of TTL range.
	d, err = FloodDelivery(g.Freeze(), 0, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Found {
		t.Fatalf("target beyond TTL reported found: %+v", d)
	}
	// Self-delivery.
	d, err = FloodDelivery(g.Freeze(), 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Found || d.Time != 0 {
		t.Fatalf("self delivery %+v", d)
	}
}

func TestFloodDeliveryValidation(t *testing.T) {
	t.Parallel()
	g := pathN(t, 3)
	if _, err := FloodDelivery(g.Freeze(), 0, 9, 5); err == nil {
		t.Error("bad target should fail")
	}
}

func TestRandomWalkDelivery(t *testing.T) {
	t.Parallel()
	g := pathN(t, 6)
	// Non-backtracking walk on a path marches straight: target at
	// distance 4 is hit in exactly 4 steps.
	d, err := RandomWalkDelivery(g.Freeze(), 0, 4, 100, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Found || d.Time != 4 {
		t.Fatalf("delivery %+v", d)
	}
	// Unreachable within budget.
	d, err = RandomWalkDelivery(g.Freeze(), 0, 5, 2, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Found {
		t.Fatalf("found beyond budget: %+v", d)
	}
}

func TestRandomWalkDeliveryDisconnected(t *testing.T) {
	t.Parallel()
	g := pathN(t, 3)
	g.AddNode() // isolated node 3
	d, err := RandomWalkDelivery(g.Freeze(), 0, 3, 1000, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Found {
		t.Fatal("reached a disconnected target")
	}
}

func TestDeliveryScalingSanity(t *testing.T) {
	t.Parallel()
	// FL delivery time grows ~log N (Eq. 6); RW delivery grows much
	// faster (Eq. 7). Compare mean delivery at two sizes on gamma=2.2 CM
	// giants.
	meanDelivery := func(n int, seed uint64) (fl, rw float64) {
		g, _, err := gen.CM(gen.CMConfig{N: n, M: 2, Gamma: 2.2}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		fz := g.Freeze()
		rng := xrand.New(seed + 1)
		const pairs = 25
		var flSum, rwSum float64
		flN, rwN := 0, 0
		for i := 0; i < pairs; i++ {
			src, dst := rng.Intn(fz.N()), rng.Intn(fz.N())
			fd, err := FloodDelivery(fz, src, dst, 50)
			if err != nil {
				t.Fatal(err)
			}
			if fd.Found {
				flSum += float64(fd.Time)
				flN++
			}
			rd, err := RandomWalkDelivery(fz, src, dst, 100*n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if rd.Found {
				rwSum += float64(rd.Time)
				rwN++
			}
		}
		if flN == 0 || rwN == 0 {
			t.Fatal("no successful deliveries")
		}
		return flSum / float64(flN), rwSum / float64(rwN)
	}
	flSmall, rwSmall := meanDelivery(1000, 11)
	flBig, rwBig := meanDelivery(4000, 13)
	// FL grows slowly (log-ish): well under 2x for a 4x size increase.
	if flBig > 2*flSmall+1 {
		t.Fatalf("FL delivery grew too fast: %.1f -> %.1f", flSmall, flBig)
	}
	// RW grows much faster than FL.
	if rwBig/rwSmall < flBig/flSmall {
		t.Logf("RW growth (%.1f->%.1f) vs FL (%.1f->%.1f): noisy draw", rwSmall, rwBig, flSmall, flBig)
	}
	if rwBig < 5*flBig {
		t.Fatalf("RW delivery (%.0f) should dwarf FL (%.1f) at N=4000", rwBig, flBig)
	}
}
