// Package search implements the three decentralized search algorithms the
// paper evaluates on unstructured P2P overlays (§V-A):
//
//   - Flooding (FL): every node forwards a query to all neighbors except
//     the sender, up to a TTL τ. Exhaustive (a complete sweep of the
//     τ-hop ball) but message-hungry — the efficiency ceiling other
//     algorithms are compared against.
//   - Normalized Flooding (NF): nodes forward to at most k_min neighbors
//     (the minimum degree in the network), fixing FL's poor granularity at
//     hubs. Introduced by Gkantsidis, Mihail & Saberi.
//   - Random Walk (RW): the query wanders one neighbor at a time,
//     excluding the node it just came from. Minimal messaging, serial
//     delivery. For fair comparison the paper gives RW the same message
//     budget NF used at each τ (RandomWalkWithNFBudget).
//
// All algorithms measure search efficiency as "number of hits": the count
// of distinct nodes discovered (including the source) within the TTL.
// Duplicate query copies are suppressed, as Gnutella does by query GUID.
//
// Fig. 5 of the paper is a schematic of these three strategies; it has no
// data series and is documented by this package instead.
package search

import (
	"errors"
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Validation errors.
var (
	ErrBadSource = errors.New("search: source node out of range")
	ErrBadTTL    = errors.New("search: TTL must be >= 0")
	ErrBadKMin   = errors.New("search: k_min must be >= 1")
)

// Result is the per-TTL outcome of one search from one source.
type Result struct {
	// Hits[t] is the number of distinct nodes discovered within TTL t
	// (Hits[0] == 1: the source itself). len(Hits) == maxTTL+1.
	Hits []int
	// Messages[t] is the cumulative number of query transmissions sent
	// by nodes at depth < t (Messages[0] == 0).
	Messages []int
}

// HitsAt returns Hits[t], clamped to the final value for t beyond the
// simulated horizon (coverage is monotone in TTL).
func (r Result) HitsAt(t int) int {
	if len(r.Hits) == 0 {
		return 0
	}
	if t >= len(r.Hits) {
		t = len(r.Hits) - 1
	}
	if t < 0 {
		t = 0
	}
	return r.Hits[t]
}

// MessagesAt returns Messages[t] with the same clamping as HitsAt.
func (r Result) MessagesAt(t int) int {
	if len(r.Messages) == 0 {
		return 0
	}
	if t >= len(r.Messages) {
		t = len(r.Messages) - 1
	}
	if t < 0 {
		t = 0
	}
	return r.Messages[t]
}

func validate(f *graph.Frozen, src, maxTTL int) error {
	if src < 0 || src >= f.N() {
		return fmt.Errorf("%w: %d (n=%d)", ErrBadSource, src, f.N())
	}
	if maxTTL < 0 {
		return fmt.Errorf("%w: %d", ErrBadTTL, maxTTL)
	}
	return nil
}

// Step advances a non-backtracking walker one hop: a uniformly random
// neighbor of cur excluding prev, backtracking to prev when cur is a dead
// end. ok is false only when the walker cannot move at all (an isolated
// node with no previous position). It is the single per-hop primitive
// behind RandomWalk, KRandomWalks, HybridSearch, the delivery walkers, the
// load profiles, and the content layer's replica probing, so their RNG
// consumption can never diverge.
func Step(f *graph.Frozen, cur, prev int, rng *xrand.RNG) (next int, ok bool) {
	next = f.RandomNeighborExcluding(cur, prev, rng)
	if next < 0 {
		if prev < 0 {
			return -1, false
		}
		next = prev // dead end: backtrack, the convention for walks on trees
	}
	return next, true
}

func errBadKMin(kMin int) error {
	return fmt.Errorf("%w: %d", ErrBadKMin, kMin)
}

// Flood runs flooding search from src up to maxTTL hops (§V-A1). It is a
// breadth-first sweep with duplicate suppression: a node forwards the query
// on first receipt only, to every neighbor except the one that delivered
// it. The source forwards to all its neighbors.
//
// Hits[t] is the size of the t-hop ball around src; on a connected graph it
// approaches N as t grows (Figs. 6–8), while on CM with m=1 it saturates at
// the source's component size (§V-B1).
//
// Flood freezes g and allocates its working buffers per call; hot paths
// that search the same topology repeatedly should Freeze once and use
// Scratch.Flood instead.
func Flood(g *graph.Graph, src, maxTTL int) (Result, error) {
	var s Scratch
	return s.Flood(g.Freeze(), src, maxTTL)
}

// NormalizedFlood runs NF search from src (§V-A2). kMin is the network's
// minimum degree parameter: a node whose degree (excluding the reverse
// link) exceeds kMin forwards to kMin uniformly chosen neighbors other than
// the sender; a node at or below kMin forwards to all neighbors except the
// sender. The source forwards to min(kMin, deg) random neighbors.
//
// NF is randomized: the paper averages hits over many sources and
// realizations (internal/sim does the averaging).
//
// NormalizedFlood freezes g and allocates its working buffers per call;
// hot paths should Freeze once and use Scratch.NormalizedFlood instead.
func NormalizedFlood(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.NormalizedFlood(g.Freeze(), src, maxTTL, kMin, rng)
}

// RandomWalk runs a random walk of exactly `steps` hops from src (§V-A3).
// At each hop the query moves to a uniformly random neighbor excluding the
// node it just came from; if the walker is at a dead end (its only
// neighbor is the previous node) it backtracks rather than dying, the
// standard convention for non-backtracking walks on trees. Hits[t] counts
// distinct nodes seen within the first t steps; Messages[t] == t.
//
// RandomWalk freezes g and allocates its working buffers per call; hot
// paths should Freeze once and use Scratch.RandomWalk instead.
func RandomWalk(g *graph.Graph, src, steps int, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.RandomWalk(g.Freeze(), src, steps, rng)
}

// RandomWalkWithNFBudget reproduces the paper's RW normalization (§V-B):
// for each τ in 1..maxTTL, the RW "data point corresponding to that τ
// value is obtained by simulating a RW search with τ equal to the number
// of messages that were caused by an NF search using" the same τ. It runs
// one NF search to obtain the per-τ message budget, then a single long
// walk, reading hits at each budget point. Returns the RW result (indexed
// by NF-τ) and the NF result that defined the budget.
//
// RandomWalkWithNFBudget freezes g and allocates its working buffers per
// call; hot paths should Freeze once and use Scratch.RandomWalkWithNFBudget
// instead.
func RandomWalkWithNFBudget(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG) (rw, nf Result, err error) {
	var s Scratch
	return s.RandomWalkWithNFBudget(g.Freeze(), src, maxTTL, kMin, rng)
}
