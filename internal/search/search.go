// Package search implements the three decentralized search algorithms the
// paper evaluates on unstructured P2P overlays (§V-A):
//
//   - Flooding (FL): every node forwards a query to all neighbors except
//     the sender, up to a TTL τ. Exhaustive (a complete sweep of the
//     τ-hop ball) but message-hungry — the efficiency ceiling other
//     algorithms are compared against.
//   - Normalized Flooding (NF): nodes forward to at most k_min neighbors
//     (the minimum degree in the network), fixing FL's poor granularity at
//     hubs. Introduced by Gkantsidis, Mihail & Saberi.
//   - Random Walk (RW): the query wanders one neighbor at a time,
//     excluding the node it just came from. Minimal messaging, serial
//     delivery. For fair comparison the paper gives RW the same message
//     budget NF used at each τ (RandomWalkWithNFBudget).
//
// All algorithms measure search efficiency as "number of hits": the count
// of distinct nodes discovered (including the source) within the TTL.
// Duplicate query copies are suppressed, as Gnutella does by query GUID.
//
// Fig. 5 of the paper is a schematic of these three strategies; it has no
// data series and is documented by this package instead.
package search

import (
	"errors"
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Validation errors.
var (
	ErrBadSource = errors.New("search: source node out of range")
	ErrBadTTL    = errors.New("search: TTL must be >= 0")
	ErrBadKMin   = errors.New("search: k_min must be >= 1")
)

// Result is the per-TTL outcome of one search from one source.
type Result struct {
	// Hits[t] is the number of distinct nodes discovered within TTL t
	// (Hits[0] == 1: the source itself). len(Hits) == maxTTL+1.
	Hits []int
	// Messages[t] is the cumulative number of query transmissions sent
	// by nodes at depth < t (Messages[0] == 0).
	Messages []int
}

// HitsAt returns Hits[t], clamped to the final value for t beyond the
// simulated horizon (coverage is monotone in TTL).
func (r Result) HitsAt(t int) int {
	if len(r.Hits) == 0 {
		return 0
	}
	if t >= len(r.Hits) {
		t = len(r.Hits) - 1
	}
	if t < 0 {
		t = 0
	}
	return r.Hits[t]
}

// MessagesAt returns Messages[t] with the same clamping as HitsAt.
func (r Result) MessagesAt(t int) int {
	if len(r.Messages) == 0 {
		return 0
	}
	if t >= len(r.Messages) {
		t = len(r.Messages) - 1
	}
	if t < 0 {
		t = 0
	}
	return r.Messages[t]
}

func validate(g *graph.Graph, src, maxTTL int) error {
	if src < 0 || src >= g.N() {
		return fmt.Errorf("%w: %d (n=%d)", ErrBadSource, src, g.N())
	}
	if maxTTL < 0 {
		return fmt.Errorf("%w: %d", ErrBadTTL, maxTTL)
	}
	return nil
}

// Flood runs flooding search from src up to maxTTL hops (§V-A1). It is a
// breadth-first sweep with duplicate suppression: a node forwards the query
// on first receipt only, to every neighbor except the one that delivered
// it. The source forwards to all its neighbors.
//
// Hits[t] is the size of the t-hop ball around src; on a connected graph it
// approaches N as t grows (Figs. 6–8), while on CM with m=1 it saturates at
// the source's component size (§V-B1).
func Flood(g *graph.Graph, src, maxTTL int) (Result, error) {
	if err := validate(g, src, maxTTL); err != nil {
		return Result{}, err
	}
	res := Result{
		Hits:     make([]int, maxTTL+1),
		Messages: make([]int, maxTTL+1),
	}
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	hits, msgs := 0, 0
	prevDepth := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := int(depth[u])
		if du > prevDepth {
			// Frontier advanced: record cumulative values at the
			// completed depth.
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs // messages sent by depth<=t arrive by t+1
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		// Forward to all neighbors except the sender. With duplicate
		// suppression the sender is never re-enqueued anyway; the message
		// count excludes the reverse transmission per the protocol.
		deg := g.Degree(int(u))
		if du == 0 {
			msgs += deg
		} else if deg > 0 {
			msgs += deg - 1
		}
		for _, v := range g.Neighbors(int(u)) {
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, v)
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res, nil
}

// NormalizedFlood runs NF search from src (§V-A2). kMin is the network's
// minimum degree parameter: a node whose degree (excluding the reverse
// link) exceeds kMin forwards to kMin uniformly chosen neighbors other than
// the sender; a node at or below kMin forwards to all neighbors except the
// sender. The source forwards to min(kMin, deg) random neighbors.
//
// NF is randomized: the paper averages hits over many sources and
// realizations (internal/sim does the averaging).
func NormalizedFlood(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG) (Result, error) {
	if err := validate(g, src, maxTTL); err != nil {
		return Result{}, err
	}
	if kMin < 1 {
		return Result{}, fmt.Errorf("%w: %d", ErrBadKMin, kMin)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := Result{
		Hits:     make([]int, maxTTL+1),
		Messages: make([]int, maxTTL+1),
	}
	type item struct {
		node int32
		from int32 // sender; -1 for the source
	}
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []item{{node: int32(src), from: -1}}
	hits, msgs := 0, 0
	prevDepth := 0
	scratch := make([]int32, 0, 64)
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		du := int(depth[it.node])
		if du > prevDepth {
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		// Candidate forward set: all neighbors except the sender.
		scratch = scratch[:0]
		for _, v := range g.Neighbors(int(it.node)) {
			if v != it.from {
				scratch = append(scratch, v)
			}
		}
		var targets []int32
		if len(scratch) <= kMin {
			targets = scratch
		} else {
			// Partial Fisher–Yates: first kMin entries become the sample.
			for i := 0; i < kMin; i++ {
				j := i + rng.Intn(len(scratch)-i)
				scratch[i], scratch[j] = scratch[j], scratch[i]
			}
			targets = scratch[:kMin]
		}
		msgs += len(targets)
		for _, v := range targets {
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, item{node: v, from: it.node})
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res, nil
}

// RandomWalk runs a random walk of exactly `steps` hops from src (§V-A3).
// At each hop the query moves to a uniformly random neighbor excluding the
// node it just came from; if the walker is at a dead end (its only
// neighbor is the previous node) it backtracks rather than dying, the
// standard convention for non-backtracking walks on trees. Hits[t] counts
// distinct nodes seen within the first t steps; Messages[t] == t.
func RandomWalk(g *graph.Graph, src, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(g, src, steps); err != nil {
		return Result{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := Result{
		Hits:     make([]int, steps+1),
		Messages: make([]int, steps+1),
	}
	visited := make([]bool, g.N())
	visited[src] = true
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := g.RandomNeighborExcluding(cur, prev, rng)
		if next < 0 {
			// Dead end: backtrack if possible, else the walk is stuck on
			// an isolated node.
			if prev >= 0 {
				next = prev
			} else {
				res.Hits[t] = hits
				res.Messages[t] = res.Messages[t-1]
				continue
			}
		}
		prev, cur = cur, next
		if !visited[cur] {
			visited[cur] = true
			hits++
		}
		res.Hits[t] = hits
		res.Messages[t] = t
	}
	return res, nil
}

// RandomWalkWithNFBudget reproduces the paper's RW normalization (§V-B):
// for each τ in 1..maxTTL, the RW "data point corresponding to that τ
// value is obtained by simulating a RW search with τ equal to the number
// of messages that were caused by an NF search using" the same τ. It runs
// one NF search to obtain the per-τ message budget, then a single long
// walk, reading hits at each budget point. Returns the RW result (indexed
// by NF-τ) and the NF result that defined the budget.
func RandomWalkWithNFBudget(g *graph.Graph, src, maxTTL, kMin int, rng *xrand.RNG) (rw, nf Result, err error) {
	nf, err = NormalizedFlood(g, src, maxTTL, kMin, rng)
	if err != nil {
		return Result{}, Result{}, err
	}
	budget := nf.Messages[maxTTL]
	walk, err := RandomWalk(g, src, budget, rng)
	if err != nil {
		return Result{}, Result{}, err
	}
	rw = Result{
		Hits:     make([]int, maxTTL+1),
		Messages: make([]int, maxTTL+1),
	}
	for t := 0; t <= maxTTL; t++ {
		b := nf.Messages[t]
		rw.Hits[t] = walk.HitsAt(b)
		rw.Messages[t] = b
	}
	return rw, nf, nil
}
