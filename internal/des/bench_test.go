package des

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// Kernel benchmarks: the DES message-level flood and k-walk on a 10k-node
// PA overlay, next to the CSR Scratch flood on the same topology — the
// measured price of the event heap and per-edge latency derivation over
// the pure traversal. All DES variants must report 0 allocs/op: the Sim
// arena, pooled heap, and the allocation-free ChunkU01 latency path are
// the point.

func benchTopo(b *testing.B) *graph.Frozen {
	b.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: 10_000, M: 2, KC: 40}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g.Freeze()
}

func BenchmarkDESFlood(b *testing.B) {
	f := benchTopo(b)
	lat := Latency{Base: 1, Jitter: 1, Phases: xrand.Phases{Seed: 2}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero-latency", Config{MaxTTL: 10}},
		{"jitter", Config{MaxTTL: 10, Latency: lat}},
		{"jitter-loss", Config{MaxTTL: 10, Latency: lat, Loss: 0.05}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			sim := NewSim(f.N())
			rng := xrand.New(3)
			var sent int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := sim.Flood(f, rng.Intn(f.N()), c.cfg, rng)
				if err != nil {
					b.Fatal(err)
				}
				sent = m.Sent
			}
			b.ReportMetric(float64(sent), "msgs")
		})
	}
}

func BenchmarkDESKWalk(b *testing.B) {
	f := benchTopo(b)
	cfg := Config{Latency: Latency{Base: 1, Jitter: 1, Phases: xrand.Phases{Seed: 2}}}
	sim := NewSim(f.N())
	rng := xrand.New(4)
	var hits int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.KWalk(f, rng.Intn(f.N()), 16, 200, cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		hits = m.Hits
	}
	b.ReportMetric(float64(hits), "hits")
}

// BenchmarkCSRFloodBaseline is the same flood through search.Scratch, for
// a side-by-side read in one bench run.
func BenchmarkCSRFloodBaseline(b *testing.B) {
	f := benchTopo(b)
	scratch := search.NewScratch(f.N())
	rng := xrand.New(3)
	var sent int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scratch.Flood(f, rng.Intn(f.N()), 10)
		if err != nil {
			b.Fatal(err)
		}
		sent = res.MessagesAt(10)
	}
	b.ReportMetric(float64(sent), "msgs")
}
