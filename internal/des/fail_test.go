package des

import (
	"errors"
	"reflect"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// failTopo builds a small PA topology for failure tests.
func failTopo(t testing.TB, n int, seed uint64) *graph.Frozen {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: n, M: 2, KC: 40}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g.Freeze()
}

// pathFrozen builds the path 0-1-2-...-(n-1).
func pathFrozen(t testing.TB, n int) *graph.Frozen {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g.Freeze()
}

// TestFailDisabledBitIdentical pins the acceptance gate: a config whose
// FailPlan is the zero value must produce bit-identical metrics to a
// config without any failure plan, for both kernels.
func TestFailDisabledBitIdentical(t *testing.T) {
	f := failTopo(t, 300, 9)
	ph := xrand.Phases{Seed: 9, Realization: 0}
	base := Config{MaxTTL: 6, Latency: Latency{Base: 1, Jitter: 1, Phases: ph}, Loss: 0.05}
	withPlan := base
	withPlan.Fail = FailPlan{Phases: ph} // zero fractions: disabled

	s1, s2 := NewSim(f.N()), NewSim(f.N())
	for src := 0; src < 10; src++ {
		m1, err := s1.Flood(f, src, base, xrand.NewStream(9, 0, uint64(src)))
		if err != nil {
			t.Fatal(err)
		}
		m2, err := s2.Flood(f, src, withPlan, xrand.NewStream(9, 0, uint64(src)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("src %d: flood diverged with a disabled FailPlan:\n%+v\n%+v", src, m1, m2)
		}
		k1, err := s1.KWalk(f, src, 8, 32, base, xrand.NewStream(9, 1, uint64(src)))
		if err != nil {
			t.Fatal(err)
		}
		k2, err := s2.KWalk(f, src, 8, 32, withPlan, xrand.NewStream(9, 1, uint64(src)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(k1, k2) {
			t.Fatalf("src %d: k-walk diverged with a disabled FailPlan:\n%+v\n%+v", src, k1, k2)
		}
	}
}

// TestFloodNodeCrashAll: with every node crashing almost immediately and
// unit latency, the flood covers only the source; every hop-1 arrival is
// a FailDropped.
func TestFloodNodeCrashAll(t *testing.T) {
	f := pathFrozen(t, 5)
	ph := xrand.Phases{Seed: 3, Realization: 0}
	cfg := Config{
		MaxTTL:  4,
		Latency: Latency{Base: 1, Phases: ph},
		Fail:    FailPlan{NodeFrac: 1, MTBF: 1e-9, Phases: ph},
	}
	m, err := NewSim(f.N()).Flood(f, 0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 1 {
		t.Fatalf("hits %d, want 1 (everyone but the source is down)", m.Hits)
	}
	if m.Sent != 1 || m.FailDropped != 1 || m.Delivered != 0 {
		t.Fatalf("sent=%d failDropped=%d delivered=%d, want 1/1/0", m.Sent, m.FailDropped, m.Delivered)
	}
}

// TestFloodLinkPartitionAll: with every edge partitioned almost
// immediately, the time-0 sends from the source still get out (nothing
// is down at t=0) but every later hop is cut.
func TestFloodLinkPartitionAll(t *testing.T) {
	f := pathFrozen(t, 5)
	ph := xrand.Phases{Seed: 3, Realization: 0}
	cfg := Config{
		MaxTTL:  4,
		Latency: Latency{Base: 1, Phases: ph},
		Fail:    FailPlan{LinkFrac: 1, MTBF: 1e-9, Phases: ph},
	}
	m, err := NewSim(f.N()).Flood(f, 0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 2 {
		t.Fatalf("hits %d, want 2 (source + its hop-1 neighbor)", m.Hits)
	}
	if m.FailDropped != 1 {
		t.Fatalf("failDropped %d, want 1 (node 1's forward to node 2)", m.FailDropped)
	}
}

// TestFloodRecovery: a short downtime window that closes before any
// message is in flight leaves the run identical to a failure-free one.
func TestFloodRecovery(t *testing.T) {
	f := failTopo(t, 200, 4)
	ph := xrand.Phases{Seed: 4, Realization: 0}
	clean := Config{MaxTTL: 5, Latency: Latency{Base: 1, Phases: ph}}
	failed := clean
	// Down-windows start around 1e-6 and close by ~0.101 — strictly
	// before the first arrivals at t=1, so everything is back up.
	failed.Fail = FailPlan{NodeFrac: 1, LinkFrac: 0, MTBF: 1e-6, Downtime: 0.1, Phases: ph}

	a, err := NewSim(f.N()).Flood(f, 0, clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSim(f.N()).Flood(f, 0, failed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hits != b.Hits || a.Delivered != b.Delivered || b.FailDropped != 0 {
		t.Fatalf("recovered run diverged: clean=%+v failed=%+v", a, b)
	}
}

// TestKWalkNodeCrashKillsWalkers: crashed nodes swallow walkers.
func TestKWalkNodeCrashKillsWalkers(t *testing.T) {
	f := pathFrozen(t, 6)
	ph := xrand.Phases{Seed: 5, Realization: 0}
	cfg := Config{
		Latency: Latency{Base: 1, Phases: ph},
		Fail:    FailPlan{NodeFrac: 1, MTBF: 1e-9, Phases: ph},
	}
	m, err := NewSim(f.N()).KWalk(f, 0, 4, 10, cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 1 {
		t.Fatalf("hits %d, want 1", m.Hits)
	}
	if m.FailDropped != 4 {
		t.Fatalf("failDropped %d, want 4 (every walker dies on its first hop)", m.FailDropped)
	}
}

// TestFailDeterministic: the same failure plan yields the same metrics
// run after run.
func TestFailDeterministic(t *testing.T) {
	f := failTopo(t, 400, 12)
	ph := xrand.Phases{Seed: 12, Realization: 3}
	cfg := Config{
		MaxTTL:  6,
		Latency: Latency{Base: 1, Jitter: 1, Phases: ph},
		Fail:    FailPlan{NodeFrac: 0.2, LinkFrac: 0.1, MTBF: 2, Downtime: 3, Phases: ph},
	}
	run := func() Metrics {
		m, err := NewSim(f.N()).Flood(f, 7, cfg, xrand.NewStream(12, 3, 7))
		if err != nil {
			t.Fatal(err)
		}
		// Copy the aliased slices so the comparison owns its data.
		out := m
		out.HitsByHop = append([]int(nil), m.HitsByHop...)
		out.SentByHop = append([]int(nil), m.SentByHop...)
		out.TimeByHop = append([]float64(nil), m.TimeByHop...)
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("failure schedule not deterministic:\n%+v\n%+v", a, b)
	}
	if a.FailDropped == 0 {
		t.Fatal("plan with 20% node / 10% link failures never fired")
	}
}

// TestFailPlanValidation: enabled plans need a positive MTBF and sane
// fractions.
func TestFailPlanValidation(t *testing.T) {
	f := pathFrozen(t, 3)
	s := NewSim(f.N())
	bad := []Config{
		{Fail: FailPlan{NodeFrac: 0.5}},           // MTBF missing
		{Fail: FailPlan{NodeFrac: 1.5, MTBF: 1}},  // frac > 1
		{Fail: FailPlan{LinkFrac: -0.1, MTBF: 1}}, // negative
		{Fail: FailPlan{LinkFrac: 0.5, MTBF: -2}}, // negative MTBF
	}
	for i, cfg := range bad {
		if _, err := s.Flood(f, 0, cfg, nil); !errors.Is(err, ErrBadFail) {
			t.Fatalf("config %d: got %v, want ErrBadFail", i, err)
		}
	}
	// A disabled plan with nonsense MTBF is fine (nothing can fire).
	if _, err := s.Flood(f, 0, Config{Fail: FailPlan{MTBF: -1}}, nil); err != nil {
		t.Fatalf("disabled plan rejected: %v", err)
	}
}
