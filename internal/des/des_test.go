package des

import (
	"math"
	"reflect"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// testTopo builds a simple (no multi-edge, no self-loop) PA topology, the
// class the sweep specs run floods on. PA attaches each node to M distinct
// existing nodes, so per-node forward counts (deg for the source, deg-1
// for interior nodes) match the CSR kernels' message accounting exactly.
func testTopo(t testing.TB, n, m int, seed uint64) *graph.Frozen {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: n, M: m, KC: 40}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g.Freeze()
}

// TestFloodMatchesCSRZeroLatency is the correctness gate: with zero
// latency and zero loss, the DES flood's cumulative coverage and message
// counts must equal search.Scratch.Flood exactly, per TTL, for every
// source probed.
func TestFloodMatchesCSRZeroLatency(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 2000, 2, 7)
	sim := NewSim(f.N())
	scratch := search.NewScratch(f.N())
	for _, maxTTL := range []int{0, 1, 3, 8} {
		for _, src := range []int{0, 1, 17, 999, 1999} {
			want, err := scratch.Flood(f, src, maxTTL)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Flood(f, src, Config{MaxTTL: maxTTL}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for tt := 0; tt <= maxTTL; tt++ {
				if got.HitsWithin(tt) != want.HitsAt(tt) {
					t.Fatalf("src=%d ttl=%d: DES hits %d, CSR %d", src, tt, got.HitsWithin(tt), want.HitsAt(tt))
				}
				if got.SentBelow(tt) != want.MessagesAt(tt) {
					t.Fatalf("src=%d ttl=%d: DES msgs %d, CSR %d", src, tt, got.SentBelow(tt), want.MessagesAt(tt))
				}
			}
			if got.Sent != want.MessagesAt(maxTTL) {
				t.Fatalf("src=%d: total sent %d, CSR %d", src, got.Sent, want.MessagesAt(maxTTL))
			}
			if got.Dropped != 0 || got.Completion != 0 {
				t.Fatalf("lossless zero-latency run dropped %d, completion %v", got.Dropped, got.Completion)
			}
		}
	}
}

// TestKWalkMatchesCSRZeroLatency pins the walk side of the gate: the
// walker-major event keys must consume the RNG exactly as the CSR kernel's
// walker-by-walker loop does, so the earliest-step hop histograms agree
// bit for bit.
func TestKWalkMatchesCSRZeroLatency(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 1500, 2, 11)
	sim := NewSim(f.N())
	scratch := search.NewScratch(f.N())
	for _, tc := range []struct{ walkers, steps int }{
		{1, 50}, {4, 25}, {8, 100}, {3, 0},
	} {
		for _, src := range []int{3, 500, 1499} {
			want, err := scratch.KRandomWalks(f, src, tc.walkers, tc.steps, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.KWalk(f, src, tc.walkers, tc.steps, Config{}, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			for tt := 0; tt <= tc.steps; tt++ {
				if got.HitsWithin(tt) != want.HitsAt(tt) {
					t.Fatalf("k=%d steps=%d src=%d t=%d: DES hits %d, CSR %d",
						tc.walkers, tc.steps, src, tt, got.HitsWithin(tt), want.HitsAt(tt))
				}
			}
			if got.Sent != want.MessagesAt(tc.steps) {
				t.Fatalf("k=%d steps=%d src=%d: DES sent %d, CSR %d",
					tc.walkers, tc.steps, src, got.Sent, want.MessagesAt(tc.steps))
			}
		}
	}
}

// TestLatencyEdgeDeterministic pins the per-edge derivation: a pure
// function of (seed, realization, edge), orientation-free, within
// [Base, Base+Jitter), and decorrelated across edges and realizations.
func TestLatencyEdgeDeterministic(t *testing.T) {
	t.Parallel()
	l := Latency{Base: 2, Jitter: 3, Phases: xrand.Phases{Seed: 5, Realization: 1}}
	if a, b := l.Edge(7, 9), l.Edge(9, 7); a != b {
		t.Fatalf("orientation changes latency: %v vs %v", a, b)
	}
	if a, b := l.Edge(7, 9), l.Edge(7, 9); a != b {
		t.Fatalf("repeated derivation differs: %v vs %v", a, b)
	}
	d := l.Edge(7, 9)
	if d < 2 || d >= 5 {
		t.Fatalf("latency %v outside [Base, Base+Jitter)", d)
	}
	if l.Edge(7, 9) == l.Edge(7, 10) {
		t.Fatal("distinct edges drew identical latency (suspicious)")
	}
	l2 := l
	l2.Phases.Realization = 2
	if l.Edge(7, 9) == l2.Edge(7, 9) {
		t.Fatal("distinct realizations drew identical latency (suspicious)")
	}
	if got := (Latency{Base: 4}).Edge(1, 2); got != 4 {
		t.Fatalf("zero-jitter latency = %v, want Base", got)
	}
}

// TestFloodLatencyModel checks the time accounting under a uniform Base
// delay: every hop-h first receipt arrives at exactly h·Base, and the
// completion time is the deepest delivery.
func TestFloodLatencyModel(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 500, 2, 3)
	sim := NewSim(f.N())
	const base = 2.5
	m, err := sim.Flood(f, 0, Config{MaxTTL: 5, Latency: Latency{Base: base}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for h, cnt := range m.HitsByHop {
		if cnt == 0 {
			continue
		}
		mean := m.TimeByHop[h] / float64(cnt)
		if math.Abs(mean-base*float64(h)) > 1e-9 {
			t.Fatalf("hop %d mean arrival %v, want %v", h, mean, base*float64(h))
		}
	}
	deepest := 0
	for h, cnt := range m.HitsByHop {
		if cnt > 0 {
			deepest = h
		}
	}
	// Duplicate arrivals can land one hop past the deepest first receipt.
	if m.Completion < base*float64(deepest) {
		t.Fatalf("completion %v earlier than deepest first receipt %v", m.Completion, base*float64(deepest))
	}
}

// TestFloodLossAndDedupCounters exercises the transport knobs: loss drops
// copies and shrinks coverage; disabling duplicate suppression re-forwards
// duplicates and sends strictly more messages.
func TestFloodLossAndDedupCounters(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 800, 2, 13)
	sim := NewSim(f.N())
	clean, err := sim.Flood(f, 5, Config{MaxTTL: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanHits, cleanDup := clean.Hits, clean.Duplicates
	if cleanDup == 0 {
		t.Fatal("a flood on a graph with cycles should see duplicate arrivals")
	}

	lossy, err := sim.Flood(f, 5, Config{MaxTTL: 6, Loss: 0.3}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Dropped == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	if lossy.Hits > cleanHits {
		t.Fatalf("loss increased coverage: %d > %d", lossy.Hits, cleanHits)
	}
	if lossy.Delivered+lossy.Dropped != lossy.Sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", lossy.Delivered, lossy.Dropped, lossy.Sent)
	}

	nodedup, err := sim.Flood(f, 5, Config{MaxTTL: 4, NoDedup: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := sim.Flood(f, 5, Config{MaxTTL: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nodedup.Sent <= dedup.Sent {
		t.Fatalf("NoDedup sent %d <= dedup %d", nodedup.Sent, dedup.Sent)
	}
	if nodedup.Hits != dedup.Hits {
		t.Fatalf("dedup changes coverage at equal TTL: %d vs %d", nodedup.Hits, dedup.Hits)
	}
}

// TestRunDeterminism: identical inputs give identical Metrics, on a reused
// Sim and on a fresh one — the per-run counterpart of the engine-level
// worker-invariance tests in internal/sim.
func TestRunDeterminism(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 600, 2, 17)
	cfg := Config{
		MaxTTL:  6,
		Latency: Latency{Base: 1, Jitter: 2, Phases: xrand.Phases{Seed: 9, Realization: 3}},
		Loss:    0.1,
	}
	snap := func(m Metrics) Metrics {
		m.HitsByHop = append([]int(nil), m.HitsByHop...)
		m.SentByHop = append([]int(nil), m.SentByHop...)
		m.TimeByHop = append([]float64(nil), m.TimeByHop...)
		return m
	}
	sim := NewSim(f.N())
	a, err := sim.Flood(f, 7, cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	first := snap(a)
	b, err := sim.Flood(f, 7, cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, snap(b)) {
		t.Fatal("reused-Sim rerun differs")
	}
	c, err := NewSim(0).Flood(f, 7, cfg, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, snap(c)) {
		t.Fatal("fresh-Sim rerun differs")
	}

	kw := func() Metrics {
		m, err := sim.KWalk(f, 7, 4, 40, cfg, xrand.New(22))
		if err != nil {
			t.Fatal(err)
		}
		return snap(m)
	}
	if ka, kb := kw(), kw(); !reflect.DeepEqual(ka, kb) {
		t.Fatal("KWalk rerun differs")
	}
}

// TestSteadyStateAllocs pins the pooled-buffer contract: after warm-up,
// repeated runs on one topology allocate nothing.
func TestSteadyStateAllocs(t *testing.T) {
	f := testTopo(t, 1000, 2, 23)
	sim := NewSim(f.N())
	cfg := Config{MaxTTL: 6, Latency: Latency{Base: 1, Jitter: 1, Phases: xrand.Phases{Seed: 2}}}
	rng := xrand.New(3)
	if _, err := sim.Flood(f, 0, cfg, rng); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := sim.Flood(f, 1, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("Flood steady state allocates %v/op", allocs)
	}
	if _, err := sim.KWalk(f, 0, 4, 50, cfg, rng); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := sim.KWalk(f, 1, 4, 50, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("KWalk steady state allocates %v/op", allocs)
	}
}

// TestValidation covers the error paths.
func TestValidation(t *testing.T) {
	t.Parallel()
	f := testTopo(t, 50, 2, 29)
	sim := NewSim(f.N())
	if _, err := sim.Flood(f, -1, Config{MaxTTL: 2}, nil); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := sim.Flood(f, 50, Config{MaxTTL: 2}, nil); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := sim.Flood(f, 0, Config{MaxTTL: -1}, nil); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if _, err := sim.Flood(f, 0, Config{MaxTTL: 2, Loss: 1.5}, nil); err == nil {
		t.Fatal("loss > 1 accepted")
	}
	if _, err := sim.KWalk(f, 0, 0, 5, Config{}, nil); err == nil {
		t.Fatal("zero walkers accepted")
	}
	if _, err := sim.KWalk(f, 0, 1, -1, Config{}, nil); err == nil {
		t.Fatal("negative steps accepted")
	}
}
