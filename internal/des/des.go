// Package des is the message-level discrete-event simulator: searches are
// messages in flight rather than algorithmic traversals. Every kernel in
// internal/search sweeps a frozen CSR in BFS or walk order, which is exact
// for coverage but cannot express the transport effects the paper's
// protocol actually lives with — heterogeneous link latency, message loss,
// duplicate arrivals racing each other to a node. Here a TTL flood or a
// k-walker search is a population of events on a time-ordered heap:
// per-node inboxes are the first-receipt marks, per-edge latency comes
// from a deterministic distribution, and loss drops copies in flight.
//
// Determinism is the same contract the experiment engine enforces
// everywhere else. Three ingredients:
//
//   - Per-edge latency is a pure function of (seed, realization, edge):
//     Latency derives a throwaway RNG from an xrand.Phases sub-stream
//     keyed by the canonical edge id, so an edge's delay never depends on
//     when (or how often) a message crosses it.
//   - Event ties are broken by a unique uint64 key, giving the heap a
//     total order: two runs with the same inputs pop events identically.
//   - All protocol randomness (NF-style choices, walk steps, loss draws)
//     comes from the caller's per-source stream, consumed in pop order.
//
// With zero latency and zero loss the simulator consumes the RNG in
// exactly the order the CSR kernels do (FIFO keys reproduce BFS level
// order for floods; walker-major keys reproduce walker-by-walker stepping
// for k-walks), so coverage, hop counts, and message counts agree exactly
// with search.Scratch — the correctness gate pinned by the equivalence
// tests here and in internal/sim.
//
// Allocation discipline follows search.Scratch: a Sim owns the event heap,
// the epoch-stamped first-receipt marks, and a small arena of per-hop
// series, so repeated runs on one topology allocate nothing after the
// first call. One Sim per goroutine; Metrics alias the Sim's buffers and
// are valid until the next run on the same Sim.
package des

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// Validation errors.
var (
	ErrBadSource  = fmt.Errorf("des: source node out of range")
	ErrBadTTL     = fmt.Errorf("des: TTL must be >= 0")
	ErrBadLoss    = fmt.Errorf("des: loss rate must be in [0, 1)")
	ErrBadWalkers = fmt.Errorf("des: walkers must be >= 1")
)

// Latency is the deterministic per-edge delay model: every edge {u, v}
// delays messages by Base + Jitter·U(u,v), where U(u,v) ∈ [0, 1) is drawn
// from the phase sub-stream keyed by the canonical edge id. The delay is a
// pure function of (Phases.Seed, Phases.Realization, u, v) — independent of
// message order, worker scheduling, and how many times the edge is used —
// which is what keeps DES figures bit-for-bit identical for any
// (Workers, SourceShards, GenWorkers) setting. The zero value is the
// zero-latency model used by the CSR equivalence gate.
type Latency struct {
	// Base is the fixed delay component shared by all edges.
	Base float64
	// Jitter scales the per-edge uniform component; 0 makes every edge
	// delay exactly Base and skips the stream derivation entirely.
	Jitter float64
	// Phases roots the per-edge derivation at (seed, realization).
	Phases xrand.Phases
}

// latencyPhase names the per-edge latency sub-stream family.
const latencyPhase = "des.latency"

// Edge returns the delay of edge {u, v}. Orientation does not matter. The
// per-edge uniform draw goes through the allocation-free ChunkU01 path, so
// a million-message run derives latencies without touching the heap.
func (l Latency) Edge(u, v int32) float64 {
	if l.Jitter == 0 {
		return l.Base
	}
	if u > v {
		u, v = v, u
	}
	return l.Base + l.Jitter*l.Phases.ChunkU01(latencyPhase, int(uint64(u)<<32|uint64(uint32(v))))
}

// Config bundles the transport knobs of one DES run.
type Config struct {
	// MaxTTL is the flood hop budget (ignored by KWalk, which takes an
	// explicit step count).
	MaxTTL int
	// Latency is the per-edge delay model.
	Latency Latency
	// Loss is the per-message loss probability, drawn from the run's RNG
	// at send time. Loss == 0 draws nothing, so lossless runs consume the
	// RNG exactly as the CSR kernels do.
	Loss float64
	// NoDedup disables flood duplicate suppression: a duplicate arrival
	// forwards again (bounded only by the TTL), modeling a protocol
	// without query GUIDs. Walks never deduplicate.
	NoDedup bool
	// Fail is the node-crash/link-partition schedule. The zero value
	// injects nothing and leaves the run bit-identical to a config
	// without it (pinned by test): failure draws come from their own
	// Phases sub-streams, never from the caller's rng.
	Fail FailPlan
}

func (cfg Config) check() error {
	if cfg.MaxTTL < 0 {
		return fmt.Errorf("%w: %d", ErrBadTTL, cfg.MaxTTL)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return fmt.Errorf("%w: %v", ErrBadLoss, cfg.Loss)
	}
	return cfg.Fail.check()
}

// Metrics is the outcome of one DES run. Slices alias the Sim's arena and
// are valid until the next run on the same Sim.
type Metrics struct {
	// Hits is the number of distinct nodes reached, including the source.
	Hits int
	// Sent counts message transmissions (loss is decided after sending, so
	// Sent includes copies that were then dropped).
	Sent int
	// Delivered counts arrivals over edges (the source's self-delivery at
	// time 0 is not an arrival).
	Delivered int
	// Dropped counts copies lost in flight.
	Dropped int
	// FailDropped counts copies lost to injected failures: sends over a
	// partitioned edge and arrivals at a crashed node (both after
	// Sent/SentByHop counted the transmission attempt, like loss).
	FailDropped int
	// Duplicates counts arrivals at already-covered nodes.
	Duplicates int
	// Completion is the arrival time of the last delivered message — the
	// wall-clock cost of the whole search under the latency model.
	Completion float64
	// HitsByHop is the hop histogram: HitsByHop[h] counts nodes whose
	// first receipt took h hops (floods) or whose earliest receipt across
	// walkers took h steps (k-walks, matching Scratch.KRandomWalks).
	// HitsByHop[0] == 1, the source. Cumulative sums reproduce the CSR
	// kernels' Hits curves under zero latency and loss.
	HitsByHop []int
	// SentByHop[h] counts messages sent by nodes acting at hop h; prefix
	// sums reproduce the CSR kernels' cumulative Messages curves.
	SentByHop []int
	// TimeByHop[h] is the sum of first-receipt arrival times binned by the
	// hop at which each node was first physically reached; dividing by the
	// bin count gives the mean latency-to-hop curve, the latency-vs-hops
	// tradeoff the CSR kernels cannot measure. For k-walks the physical
	// first-arrival hop can exceed the earliest-step value HitsByHop bins
	// by (a later walker may reach the node in fewer steps).
	TimeByHop []float64
}

// HitsWithin returns the number of distinct nodes first reached within h
// hops (the cumulative form matching search.Result.HitsAt).
func (m Metrics) HitsWithin(h int) int {
	if h >= len(m.HitsByHop) {
		h = len(m.HitsByHop) - 1
	}
	total := 0
	for i := 0; i <= h; i++ {
		total += m.HitsByHop[i]
	}
	return total
}

// SentBelow returns the number of messages sent by nodes at hops < h (the
// cumulative form matching search.Result.MessagesAt).
func (m Metrics) SentBelow(h int) int {
	if h > len(m.SentByHop) {
		h = len(m.SentByHop)
	}
	total := 0
	for i := 0; i < h; i++ {
		total += m.SentByHop[i]
	}
	return total
}

// event is one message in flight: it arrives at node (from `from`, having
// taken `hop` hops) at the given time. key totally orders simultaneous
// events — FIFO sequence numbers for floods, walker-major (walker, step)
// ranks for k-walks — so the heap pop order, and with it every RNG draw,
// is deterministic.
type event struct {
	time float64
	key  uint64
	node int32
	from int32
	hop  int32
}

func (e event) before(o event) bool {
	return e.time < o.time || (e.time == o.time && e.key < o.key)
}

// Sim owns the reusable DES state: the event heap, the epoch-stamped
// first-receipt marks (cleared in O(1) by bumping the epoch), the earliest
// step values for k-walks, and the per-hop series arena. The zero value is
// ready to use; buffers grow on demand and are retained. A Sim must not be
// copied after first use and is not safe for concurrent use — one Sim per
// goroutine, exactly like search.Scratch.
type Sim struct {
	heap  []event
	epoch int32
	mark  []int32
	// val[v] is the earliest k-walk step at which v was reached; valid
	// only while mark[v] carries the epoch that wrote it.
	val  []int32
	seen []int32
	// intBufs/floatBufs arena per-hop result series reused across runs.
	intBufs      [][]int
	floatBufs    [][]float64
	nInt, nFloat int
}

// NewSim returns a Sim pre-sized for n-node graphs. n may be 0; buffers
// grow on first use either way.
func NewSim(n int) *Sim {
	s := &Sim{}
	s.ensure(n)
	return s
}

func (s *Sim) reset() { s.nInt, s.nFloat = 0, 0 }

func (s *Sim) ensure(n int) {
	if len(s.mark) < n {
		s.mark = make([]int32, n)
		s.val = make([]int32, n)
		s.epoch = 0
	}
}

func (s *Sim) newEpoch() int32 {
	if s.epoch == math.MaxInt32 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	return s.epoch
}

// intBuf hands out a zeroed length-n series from the arena.
func (s *Sim) intBuf(n int) []int {
	if s.nInt == len(s.intBufs) {
		s.intBufs = append(s.intBufs, nil)
	}
	b := s.intBufs[s.nInt]
	if cap(b) < n {
		b = make([]int, n)
		s.intBufs[s.nInt] = b
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	s.nInt++
	return b
}

// floatBuf hands out a zeroed length-n series from the arena.
func (s *Sim) floatBuf(n int) []float64 {
	if s.nFloat == len(s.floatBufs) {
		s.floatBufs = append(s.floatBufs, nil)
	}
	b := s.floatBufs[s.nFloat]
	if cap(b) < n {
		b = make([]float64, n)
		s.floatBufs[s.nFloat] = b
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	s.nFloat++
	return b
}

// push inserts an event into the heap (sift-up on (time, key)).
func (s *Sim) push(ev event) {
	h := append(s.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

// pop removes the earliest event (sift-down on (time, key)).
func (s *Sim) pop() event {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h[l].before(h[m]) {
			m = l
		}
		if r < last && h[r].before(h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.heap = h
	return top
}

func validate(f *graph.Frozen, src int) error {
	if src < 0 || src >= f.N() {
		return fmt.Errorf("%w: %d (n=%d)", ErrBadSource, src, f.N())
	}
	return nil
}

// Flood runs a TTL-limited flood from src as messages in flight: the
// source's query copy arrives at itself at time 0, and every node forwards
// on first receipt (or on every receipt with cfg.NoDedup) to all neighbors
// except the sender, each copy arriving after the edge's latency. rng
// supplies the loss draws, consumed in event pop order; it may be nil when
// cfg.Loss == 0. The Metrics alias s.
//
// With zero latency the FIFO event keys reproduce BFS level order, so a
// lossless run's coverage, hop counts, and message counts equal
// search.Scratch.Flood on the same simple topology exactly.
func (s *Sim) Flood(f *graph.Frozen, src int, cfg Config, rng *xrand.RNG) (Metrics, error) {
	if err := validate(f, src); err != nil {
		return Metrics{}, err
	}
	if err := cfg.check(); err != nil {
		return Metrics{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	m := Metrics{
		HitsByHop: s.intBuf(cfg.MaxTTL + 1),
		SentByHop: s.intBuf(cfg.MaxTTL + 1),
		TimeByHop: s.floatBuf(cfg.MaxTTL + 1),
	}
	failing := cfg.Fail.Enabled()
	var downStart, downEnd []float64
	if failing {
		downStart, downEnd = s.nodeWindows(cfg.Fail, f.N())
	}
	s.heap = s.heap[:0]
	var seq uint64
	s.push(event{time: 0, key: seq, node: int32(src), from: -1, hop: 0})
	seq++
	for len(s.heap) > 0 {
		ev := s.pop()
		if failing && ev.time >= downStart[ev.node] && ev.time < downEnd[ev.node] {
			// The node is down: an in-flight copy is lost on arrival (the
			// source's own time-0 copy just fizzles uncounted).
			if ev.hop > 0 {
				m.FailDropped++
			}
			continue
		}
		if ev.hop > 0 {
			m.Delivered++
			if ev.time > m.Completion {
				m.Completion = ev.time
			}
		}
		if s.mark[ev.node] != ep {
			s.mark[ev.node] = ep
			m.Hits++
			m.HitsByHop[ev.hop]++
			m.TimeByHop[ev.hop] += ev.time
		} else {
			m.Duplicates++
			if !cfg.NoDedup {
				continue
			}
		}
		if int(ev.hop) == cfg.MaxTTL {
			continue
		}
		for _, w := range f.Neighbors(int(ev.node)) {
			if w == ev.from {
				continue
			}
			m.Sent++
			m.SentByHop[ev.hop]++
			if failing && cfg.Fail.edgeDown(ev.node, w, ev.time) {
				// Partitioned at send time: the copy never leaves.
				m.FailDropped++
				continue
			}
			if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
				m.Dropped++
				continue
			}
			s.push(event{
				time: ev.time + cfg.Latency.Edge(ev.node, w),
				key:  seq,
				node: w,
				from: ev.node,
				hop:  ev.hop + 1,
			})
			seq++
		}
	}
	return m, nil
}

// KWalk runs `walkers` independent non-backtracking random walks of
// `steps` hops from src, each walker a message hopping edge by edge under
// the latency model. A walker picks its next node via search.Step when its
// arrival event is processed, so with zero latency the walker-major event
// keys consume rng exactly as Scratch.KRandomWalks does (walker 0's whole
// walk, then walker 1's, ...), and the earliest-step hop histogram matches
// it exactly. With cfg.Loss > 0 a lost copy kills that walker. cfg.MaxTTL
// and cfg.NoDedup are ignored. The Metrics alias s.
func (s *Sim) KWalk(f *graph.Frozen, src, walkers, steps int, cfg Config, rng *xrand.RNG) (Metrics, error) {
	if err := validate(f, src); err != nil {
		return Metrics{}, err
	}
	if walkers < 1 {
		return Metrics{}, fmt.Errorf("%w: %d", ErrBadWalkers, walkers)
	}
	if steps < 0 {
		return Metrics{}, fmt.Errorf("%w: %d steps", ErrBadTTL, steps)
	}
	if err := cfg.check(); err != nil {
		return Metrics{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	s.reset()
	s.ensure(f.N())
	ep := s.newEpoch()
	m := Metrics{
		HitsByHop: s.intBuf(steps + 1),
		SentByHop: s.intBuf(steps + 1),
		TimeByHop: s.floatBuf(steps + 1),
	}
	failing := cfg.Fail.Enabled()
	var downStart, downEnd []float64
	if failing {
		downStart, downEnd = s.nodeWindows(cfg.Fail, f.N())
	}
	seen := s.seen[:0]
	s.mark[src] = ep
	s.val[src] = 0
	seen = append(seen, int32(src))
	s.heap = s.heap[:0]
	// Walker-major keys: at equal times walker w's step t outranks walker
	// w+1's step 0, so zero-latency runs step each walker to completion in
	// turn — the CSR kernel's RNG consumption order.
	perWalker := uint64(steps + 1)
	for w := 0; w < walkers; w++ {
		s.push(event{time: 0, key: uint64(w) * perWalker, node: int32(src), from: -1, hop: 0})
	}
	for len(s.heap) > 0 {
		ev := s.pop()
		if failing && ev.time >= downStart[ev.node] && ev.time < downEnd[ev.node] {
			// The node is down: the walker's copy is lost on arrival and
			// the walker dies (a walker starting on a crashed source
			// fizzles uncounted, like the flood's time-0 copy).
			if ev.hop > 0 {
				m.FailDropped++
			}
			continue
		}
		if ev.hop > 0 {
			m.Delivered++
			if ev.time > m.Completion {
				m.Completion = ev.time
			}
			if s.mark[ev.node] != ep {
				s.mark[ev.node] = ep
				s.val[ev.node] = ev.hop
				seen = append(seen, ev.node)
				m.TimeByHop[ev.hop] += ev.time
			} else if ev.hop < s.val[ev.node] {
				s.val[ev.node] = ev.hop
			}
		}
		if int(ev.hop) == steps {
			continue
		}
		next, ok := search.Step(f, int(ev.node), int(ev.from), rng)
		if !ok {
			continue // isolated source: the walker cannot move
		}
		m.Sent++
		m.SentByHop[ev.hop]++
		if failing && cfg.Fail.edgeDown(ev.node, int32(next), ev.time) {
			m.FailDropped++
			continue // partitioned at send time; the walker dies
		}
		if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
			m.Dropped++
			continue // the copy was lost in flight; the walker dies
		}
		s.push(event{
			time: ev.time + cfg.Latency.Edge(ev.node, int32(next)),
			key:  ev.key + 1,
			node: int32(next),
			from: ev.node,
			hop:  ev.hop + 1,
		})
	}
	for _, v := range seen {
		m.HitsByHop[s.val[v]]++
	}
	m.Hits = len(seen)
	s.seen = seen
	return m, nil
}
