package des

import (
	"fmt"
	"math"

	"scalefree/internal/xrand"
)

// ErrBadFail flags an invalid failure plan.
var ErrBadFail = fmt.Errorf("des: invalid failure plan")

// Phase names of the failure sub-streams. Selection and onset are
// separate families so changing one fraction never reshuffles the other
// draws — the same property the latency model has.
const (
	failNodePhase   = "des.fail.node"   // per-node crash selection
	failNodeAtPhase = "des.fail.at"     // per-node crash onset
	failLinkPhase   = "des.fail.link"   // per-edge partition selection
	failLinkAtPhase = "des.fail.linkat" // per-edge partition onset
)

// FailPlan is the deterministic failure model: node crash/recovery and
// link-partition down-windows drawn from Phases sub-streams. Whether a
// node (or edge) fails and when are pure functions of
// (Phases.Seed, Phases.Realization, node-or-edge id) — independent of
// message order and worker scheduling, so failure sweeps keep the
// pipeline's bit-for-bit determinism contract.
//
// A selected element's down-window starts at an Exp(MTBF)-distributed
// time and lasts Downtime (forever when Downtime <= 0, i.e. crash
// without recovery). At t=0 everything is up; failures strike while the
// search is in flight, which is the regime the paper's robustness
// question lives in. The zero value disables all failures and changes
// nothing about a run.
type FailPlan struct {
	// NodeFrac is the fraction of nodes that crash (each node draws its
	// own selection, so the realized count is binomial around it).
	NodeFrac float64
	// LinkFrac is the fraction of edges that partition.
	LinkFrac float64
	// MTBF is the mean time before a selected element's down-window
	// starts (exponential onset). Required > 0 when any fraction is.
	MTBF float64
	// Downtime is the length of each down-window; <= 0 means the element
	// never recovers.
	Downtime float64
	// Phases roots the per-element derivation at (seed, realization).
	Phases xrand.Phases
}

// Enabled reports whether any failure class can fire.
func (p FailPlan) Enabled() bool { return p.NodeFrac > 0 || p.LinkFrac > 0 }

func (p FailPlan) check() error {
	if p.NodeFrac < 0 || p.NodeFrac > 1 {
		return fmt.Errorf("%w: node fraction %v out of [0, 1]", ErrBadFail, p.NodeFrac)
	}
	if p.LinkFrac < 0 || p.LinkFrac > 1 {
		return fmt.Errorf("%w: link fraction %v out of [0, 1]", ErrBadFail, p.LinkFrac)
	}
	if p.Enabled() && p.MTBF <= 0 {
		return fmt.Errorf("%w: MTBF %v must be > 0 when failures are enabled", ErrBadFail, p.MTBF)
	}
	return nil
}

// nodeWindow returns the down-window [start, end) of node v; a node that
// never crashes gets [+Inf, +Inf).
func (p FailPlan) nodeWindow(v int) (start, end float64) {
	inf := math.Inf(1)
	if p.NodeFrac <= 0 || p.Phases.ChunkU01(failNodePhase, v) >= p.NodeFrac {
		return inf, inf
	}
	start = -p.MTBF * math.Log1p(-p.Phases.ChunkU01(failNodeAtPhase, v))
	end = inf
	if p.Downtime > 0 {
		end = start + p.Downtime
	}
	return start, end
}

// edgeDown reports whether edge {u, v} is partitioned at time t.
// Orientation does not matter; the derivation goes through the same
// canonical edge id the latency model uses, via the allocation-free
// ChunkU01 path.
func (p FailPlan) edgeDown(u, v int32, t float64) bool {
	if p.LinkFrac <= 0 {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := int(uint64(u)<<32 | uint64(uint32(v)))
	if p.Phases.ChunkU01(failLinkPhase, key) >= p.LinkFrac {
		return false
	}
	start := -p.MTBF * math.Log1p(-p.Phases.ChunkU01(failLinkAtPhase, key))
	if t < start {
		return false
	}
	return p.Downtime <= 0 || t < start+p.Downtime
}

// nodeWindows materializes every node's down-window into two arena
// slices (start, end), so the hot loop tests a crash with two loads
// instead of two stream derivations per event.
func (s *Sim) nodeWindows(p FailPlan, n int) (starts, ends []float64) {
	starts = s.floatBuf(n)
	ends = s.floatBuf(n)
	if p.NodeFrac <= 0 {
		inf := math.Inf(1)
		for i := range starts {
			starts[i] = inf
			ends[i] = inf
		}
		return starts, ends
	}
	for v := 0; v < n; v++ {
		starts[v], ends[v] = p.nodeWindow(v)
	}
	return starts, ends
}
