// Package scalefree builds and evaluates scale-free overlay topologies
// with hard degree cutoffs for unstructured peer-to-peer networks,
// implementing Guclu & Yuksel, "Scale-Free Overlay Topologies with Hard
// Cutoffs for Unstructured Peer-to-Peer Networks" (ICDCS 2007).
//
// The library has five layers, all re-exported here:
//
//   - Topology generators (GeneratePA, GenerateCM, GenerateHAPA,
//     GenerateDAPA, plus substrates and baselines): build overlay graphs
//     with or without per-peer hard cutoffs kc, using global information
//     (PA, CM) or only local information (HAPA, DAPA).
//   - Search algorithms (Flood, NormalizedFlood, RandomWalk,
//     RandomWalkWithNFBudget, plus the cited baselines HighDegreeWalk,
//     ProbabilisticFlood, HybridSearch): measure hits and messaging per
//     TTL on any generated topology; load profiles (NewSearchLoad) charge
//     the work to individual peers.
//   - A content layer (NewCatalog, Replicate, ExpectedSearchSize): Zipf
//     item popularity and the Cohen–Shenker replication strategies the
//     searches ultimately serve.
//   - A churn laboratory (NewChurnSimulator): the paper's §VI join/leave
//     future work as a deterministic graph-level simulation.
//   - A live overlay runtime (NewOverlay, NewPeer): the same join and
//     search protocols as actual message-passing code, one goroutine per
//     peer, with in-memory or TCP transports and optional uncooperative
//     Behavior models.
//
// # Quick start
//
//	rng := scalefree.NewRNG(42)
//	g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: 10000, M: 2, KC: 40}, rng)
//	if err != nil { ... }
//	res, err := scalefree.Flood(g, 0, 8)
//	fmt.Println(res.Hits) // nodes discovered per TTL
//
// The experiment harness that regenerates every figure and table of the
// paper lives in internal/sim and is driven by cmd/experiments; see
// EXPERIMENTS.md for the paper-vs-measured record.
package scalefree

import (
	"io"
	"time"

	"scalefree/internal/churn"
	"scalefree/internal/content"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/metrics"
	"scalefree/internal/p2p"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// Graph is an undirected (multi)graph over dense node IDs; see the methods
// on graph.Graph for traversal, components, distances, and serialization.
type Graph = graph.Graph

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// FrozenTopology is a compressed-sparse-row (CSR) snapshot of a Graph: the
// read-only fast path every search kernel and structural metric runs on.
// Freeze a generated topology once, let the mutable Graph be collected,
// and run any number of searches against the snapshot — neighbor order is
// preserved, so results are bit-for-bit identical to searching the Graph
// directly.
type FrozenTopology = graph.Frozen

// Freeze snapshots g into CSR form. The convenience functions below that
// accept a *Graph freeze internally per call; hot loops (many searches or
// metrics on one topology) should Freeze once and use the
// *FrozenTopology-based APIs (SearchScratch methods, Graph-method
// counterparts on FrozenTopology).
func Freeze(g *Graph) *FrozenTopology { return g.Freeze() }

// ReadEdgeList parses the edge-list format written by Graph.WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// RNG is the library's deterministic random number generator; every
// generator and randomized search takes one explicitly.
type RNG = xrand.RNG

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// NoCutoff disables the hard degree cutoff (kc = ∞).
const NoCutoff = gen.NoCutoff

// Topology generator configurations and results (see internal/gen for the
// full documentation of each mechanism).
type (
	// PAConfig parameterizes preferential attachment with hard cutoffs.
	PAConfig = gen.PAConfig
	// CMConfig parameterizes the configuration model.
	CMConfig = gen.CMConfig
	// HAPAConfig parameterizes Hop-and-Attempt preferential attachment.
	HAPAConfig = gen.HAPAConfig
	// DAPAConfig parameterizes Discover-and-Attempt preferential
	// attachment on a substrate network.
	DAPAConfig = gen.DAPAConfig
	// GRNConfig parameterizes geometric random (substrate) networks.
	GRNConfig = gen.GRNConfig
	// GenStats reports generation-time events (rejections, fallbacks,
	// cleanup counts).
	GenStats = gen.Stats
	// DAPAOverlay is a DAPA result: overlay graph plus substrate mapping.
	DAPAOverlay = gen.Overlay
)

// GeneratePA builds a preferential-attachment topology (Appendix A).
func GeneratePA(cfg PAConfig, rng *RNG) (*Graph, GenStats, error) { return gen.PA(cfg, rng) }

// GenerateCM builds a configuration-model topology with a power-law degree
// sequence (Appendix B).
func GenerateCM(cfg CMConfig, rng *RNG) (*Graph, GenStats, error) { return gen.CM(cfg, rng) }

// GenerateHAPA builds a Hop-and-Attempt topology (Appendix C).
func GenerateHAPA(cfg HAPAConfig, rng *RNG) (*Graph, GenStats, error) { return gen.HAPA(cfg, rng) }

// GenerateDAPA grows a Discover-and-Attempt overlay on the given substrate
// (Appendix D). Build a substrate first with GenerateGRN or GenerateMesh.
func GenerateDAPA(substrate *Graph, cfg DAPAConfig, rng *RNG) (*DAPAOverlay, GenStats, error) {
	return gen.DAPA(substrate, cfg, rng)
}

// GenerateGRN builds a geometric random network substrate and returns node
// coordinates alongside the graph.
func GenerateGRN(cfg GRNConfig, rng *RNG) (*Graph, []gen.Point, error) { return gen.GRN(cfg, rng) }

// GenerateMesh builds a width×height 2-D grid substrate.
func GenerateMesh(width, height int) (*Graph, error) { return gen.Mesh(width, height) }

// GenerateER builds an Erdős–Rényi G(n, M) baseline.
func GenerateER(n, edges int, rng *RNG) (*Graph, error) { return gen.ER(n, edges, rng) }

// GenerateWattsStrogatz builds a small-world baseline.
func GenerateWattsStrogatz(n, k int, beta float64, rng *RNG) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, rng)
}

// Extension generators (paper §III-C's alternatives to hard cutoffs).
type (
	// NLPAConfig parameterizes nonlinear preferential attachment
	// (attachment kernel k^Alpha).
	NLPAConfig = gen.NLPAConfig
	// FitnessConfig parameterizes the Bianconi–Barabási fitness model.
	FitnessConfig = gen.FitnessConfig
)

// GenerateNLPA builds a nonlinear preferential-attachment topology:
// Alpha < 1 suppresses hubs without a cutoff; Alpha > 1 condenses.
func GenerateNLPA(cfg NLPAConfig, rng *RNG) (*Graph, GenStats, error) { return gen.NLPA(cfg, rng) }

// GenerateFitness builds a fitness-model topology where young-but-fit
// nodes can overtake old hubs; it returns the per-node fitness values.
func GenerateFitness(cfg FitnessConfig, rng *RNG) (*Graph, []float64, GenStats, error) {
	return gen.Fitness(cfg, rng)
}

// LocalEventsConfig parameterizes the Albert–Barabási local-events
// (dynamic edge-rewiring) model.
type LocalEventsConfig = gen.LocalEventsConfig

// GenerateLocalEvents builds an Albert–Barabási local-events network
// (node additions, edge additions, and rewiring with probabilities
// 1-P-Q, P, Q), the dynamic-rewiring alternative of §III-C.
func GenerateLocalEvents(cfg LocalEventsConfig, rng *RNG) (*Graph, GenStats, error) {
	return gen.LocalEvents(cfg, rng)
}

// SearchResult is the per-TTL outcome (hits, messages) of one search.
type SearchResult = search.Result

// Flood runs flooding search (FL, §V-A1) from src up to maxTTL hops.
func Flood(g *Graph, src, maxTTL int) (SearchResult, error) { return search.Flood(g, src, maxTTL) }

// NormalizedFlood runs NF search (§V-A2) with fan-out kMin.
func NormalizedFlood(g *Graph, src, maxTTL, kMin int, rng *RNG) (SearchResult, error) {
	return search.NormalizedFlood(g, src, maxTTL, kMin, rng)
}

// RandomWalk runs a non-backtracking random walk of `steps` hops (§V-A3).
func RandomWalk(g *Graph, src, steps int, rng *RNG) (SearchResult, error) {
	return search.RandomWalk(g, src, steps, rng)
}

// RandomWalkWithNFBudget runs RW normalized to NF's message budget, the
// paper's fair-comparison protocol (§V-B).
func RandomWalkWithNFBudget(g *Graph, src, maxTTL, kMin int, rng *RNG) (rw, nf SearchResult, err error) {
	return search.RandomWalkWithNFBudget(g, src, maxTTL, kMin, rng)
}

// SearchScratch owns reusable search state (visited bitset, frontier
// queues, result arena) so repeated Flood/NF/RW calls on one topology
// allocate nothing. One scratch per goroutine; results returned by its
// methods are valid until the next call on the same scratch. A scratch
// must not be copied after first use — copies share backing arrays; pass
// *SearchScratch and create new ones with NewSearchScratch.
type SearchScratch = search.Scratch

// NewSearchScratch returns a search scratch pre-sized for n-node graphs
// (n may be 0; buffers grow on demand).
func NewSearchScratch(n int) *SearchScratch { return search.NewScratch(n) }

// KRandomWalks runs `walkers` parallel non-backtracking random walks from
// src (the paper's "multiple RWs" alternative, §V-B1).
func KRandomWalks(g *Graph, src, walkers, steps int, rng *RNG) (SearchResult, error) {
	return search.KRandomWalks(g.Freeze(), src, walkers, steps, rng)
}

// HighDegreeWalk runs the degree-seeking walk of Adamic et al. (paper ref
// [62]): each hop moves to the highest-degree unvisited neighbor,
// exploiting hubs — the strategy hard cutoffs deliberately weaken.
func HighDegreeWalk(g *Graph, src, steps int, rng *RNG) (SearchResult, error) {
	return search.HighDegreeWalk(g.Freeze(), src, steps, rng)
}

// ProbabilisticFlood runs flooding in which interior nodes forward each
// copy independently with probability p (paper ref [29]); p=1 is Flood.
func ProbabilisticFlood(g *Graph, src, maxTTL int, p float64, rng *RNG) (SearchResult, error) {
	return search.ProbabilisticFlood(g.Freeze(), src, maxTTL, p, rng)
}

// HybridSearch runs the Gkantsidis–Mihail–Saberi flood-then-walk hybrid
// (paper ref [30]): a flood of depth floodTTL, then `walkers` random walks
// of `steps` hops from the flood frontier.
func HybridSearch(g *Graph, src, floodTTL, walkers, steps int, rng *RNG) (SearchResult, error) {
	return search.HybridSearch(g.Freeze(), src, floodTTL, walkers, steps, rng)
}

// Delivery is the outcome of a targeted search (found, time, messages).
type Delivery = search.Delivery

// FloodDelivery measures flooding's delivery time to a target
// (the shortest-path length; Eq. 6 predicts ~log N growth).
func FloodDelivery(g *Graph, src, target, maxTTL int) (Delivery, error) {
	return search.FloodDelivery(g.Freeze(), src, target, maxTTL)
}

// RandomWalkDelivery measures a single walker's first-arrival time at a
// target (Eq. 7 predicts ~N^0.79 growth on γ≈2.1 networks).
func RandomWalkDelivery(g *Graph, src, target, maxSteps int, rng *RNG) (Delivery, error) {
	return search.RandomWalkDelivery(g.Freeze(), src, target, maxSteps, rng)
}

// RingResult is the outcome of an expanding-ring search.
type RingResult = search.RingResult

// ExpandingRing searches for a node satisfying isTarget with escalating
// flood TTLs (Lv et al.'s technique; nil schedule doubles 1,2,4.. up to
// maxTTL), saving messages on nearby content.
func ExpandingRing(g *Graph, src int, isTarget func(node int) bool, schedule []int, maxTTL int) (RingResult, error) {
	return search.ExpandingRing(g.Freeze(), src, isTarget, schedule, maxTTL)
}

// CrawlResult is an overlay topology reconstructed by protocol-level
// crawling (Peer.Crawl).
type CrawlResult = p2p.CrawlResult

// Structural metrics and robustness analysis (§III's "robust yet
// fragile").
type (
	// RemovalStrategy selects failure vs attack node removal.
	RemovalStrategy = metrics.RemovalStrategy
	// RobustnessPoint is one (removed fraction, giant fraction) sample.
	RobustnessPoint = metrics.RobustnessPoint
)

// Node-removal strategies for Robustness.
const (
	RemoveRandom        = metrics.RemoveRandom
	RemoveHighestDegree = metrics.RemoveHighestDegree
)

// GlobalClustering returns the graph's transitivity.
func GlobalClustering(g *Graph) float64 { return metrics.GlobalClustering(g.Freeze()) }

// KNNPoint is one point of the average-neighbor-degree curve k_nn(k).
type KNNPoint = metrics.KNNPoint

// AverageNeighborDegree computes the degree-correlation function k_nn(k).
func AverageNeighborDegree(g *Graph) []KNNPoint { return metrics.AverageNeighborDegree(g.Freeze()) }

// DegreeAssortativity returns Newman's degree-correlation coefficient r.
func DegreeAssortativity(g *Graph) (float64, error) { return metrics.DegreeAssortativity(g.Freeze()) }

// Robustness measures giant-component survival under progressive node
// removal (random failures or targeted hub attacks).
func Robustness(g *Graph, strategy RemovalStrategy, stepFrac, maxFrac float64, rng *RNG) ([]RobustnessPoint, error) {
	return metrics.Robustness(g, strategy, stepFrac, maxFrac, rng)
}

// Degree-distribution analysis.
type (
	// DegreeDist is a normalized degree distribution P(k).
	DegreeDist = stats.DegreeDist
	// PowerLawFit is a fitted degree exponent with its standard error.
	PowerLawFit = stats.PowerLawFit
)

// DegreeDistribution computes P(k) for a graph.
func DegreeDistribution(g *Graph) DegreeDist { return stats.NewDegreeDist(g.DegreeHistogram()) }

// FitDegreeExponent fits P(k) ~ k^-gamma on logarithmically binned data
// for degrees in [kMin, kMax] (kMax <= 0 unbounded), the paper's fitting
// procedure.
func FitDegreeExponent(d DegreeDist, kMin, kMax int) (PowerLawFit, error) {
	return stats.FitPowerLawBinned(d, 1.5, kMin, kMax)
}

// DegreeGini returns the Gini coefficient of the graph's degree sequence —
// the load-fairness measure behind the paper's motivation for hard cutoffs.
func DegreeGini(g *Graph) float64 { return stats.Gini(g.DegreeSequence()) }

// TopLoadShare returns the fraction of all links held by the top `frac`
// share of peers (e.g. 0.01 for the top 1%).
func TopLoadShare(g *Graph, frac float64) float64 { return stats.TopShare(g.DegreeSequence(), frac) }

// KSDistance returns the Kolmogorov–Smirnov distance between a degree
// distribution's tail (k >= kMin) and a discrete power law with the given
// exponent.
func KSDistance(d DegreeDist, gamma float64, kMin int) (float64, error) {
	return stats.KSDistance(d, gamma, kMin)
}

// NaturalCutoff returns the Dorogovtsev et al. natural degree cutoff
// m·N^(1/(γ-1)) (paper Eq. 4), the scale hard cutoffs are compared
// against.
func NaturalCutoff(n, m int, gamma float64) float64 {
	return stats.NaturalCutoffDorogovtsev(n, m, gamma)
}

// Live overlay runtime (see internal/p2p).
type (
	// Peer is one live overlay participant (goroutine + mailbox).
	Peer = p2p.Peer
	// PeerConfig parameterizes a live peer.
	PeerConfig = p2p.Config
	// PeerInfo is a discovered peer's address and advertised degree.
	PeerInfo = p2p.PeerInfo
	// Overlay manages an in-process population of live peers.
	Overlay = p2p.Overlay
	// OverlayConfig parameterizes an overlay population.
	OverlayConfig = p2p.OverlayConfig
	// Network abstracts the transport (in-memory or TCP).
	Network = p2p.Network
	// QueryResult is the outcome of one live content search.
	QueryResult = p2p.QueryResult
	// JoinStrategy selects the live join protocol.
	JoinStrategy = p2p.JoinStrategy
	// SearchAlg names a live search algorithm.
	SearchAlg = p2p.Alg
)

// Live join strategies and search algorithms.
const (
	JoinRandom = p2p.JoinRandom
	JoinDAPA   = p2p.JoinDAPA
	JoinHAPA   = p2p.JoinHAPA

	SearchFlood = p2p.AlgFlood
	SearchNF    = p2p.AlgNF
	SearchRW    = p2p.AlgRW
)

// Maintainer runs periodic self-healing for one live peer (§VI).
type Maintainer = p2p.Maintainer

// NewMaintainer starts background maintenance for a peer: dead-link
// pruning plus re-join through the bootstrap provider when degree drops
// below M. Stop it with Maintainer.Stop.
func NewMaintainer(p *Peer, bootstrap func() string, strategy JoinStrategy, interval time.Duration) *Maintainer {
	return p2p.NewMaintainer(p, bootstrap, strategy, interval)
}

// NewOverlay creates an empty in-process overlay population.
func NewOverlay(cfg OverlayConfig) (*Overlay, error) { return p2p.NewOverlay(cfg) }

// NewPeer starts one live peer on the given transport.
func NewPeer(cfg PeerConfig, net Network) (*Peer, error) { return p2p.NewPeer(cfg, net) }

// NewInMemoryNetwork returns an in-process transport.
func NewInMemoryNetwork() *p2p.InMemoryNetwork { return p2p.NewInMemoryNetwork() }

// NewTCPNetwork returns a TCP transport (newline-delimited JSON frames).
func NewTCPNetwork() *p2p.TCPNetwork { return p2p.NewTCPNetwork() }

// Fault injection and self-healing (see internal/p2p).
type (
	// FaultyNetwork wraps any Network and injects drops, delays,
	// duplicates, reorders, and named partitions from a deterministic
	// seeded schedule. A zero FaultConfig is byte-transparent.
	FaultyNetwork = p2p.FaultyNetwork
	// FaultConfig parameterizes a FaultyNetwork.
	FaultConfig = p2p.FaultConfig
	// FaultStats counts what a FaultyNetwork did to the traffic.
	FaultStats = p2p.FaultStats
	// MaintainerConfig parameterizes heartbeat-driven maintenance.
	MaintainerConfig = p2p.MaintainerConfig
	// MaintainerReport is the maintenance loop's failure-detection and
	// recovery metrics (time-to-reconnect, prune/repair counts).
	MaintainerReport = p2p.MaintainerReport
	// RecoveryReport is Overlay.Heal's outcome: rounds, repairs, and the
	// coverage-recovery curve back to one connected component.
	RecoveryReport = p2p.RecoveryReport
)

// NewFaultyNetwork wraps inner with the given fault schedule.
func NewFaultyNetwork(inner Network, cfg FaultConfig) *FaultyNetwork {
	return p2p.NewFaultyNetwork(inner, cfg)
}

// NewMaintainerWith starts background maintenance with explicit
// failure-detection knobs (heartbeat interval, consecutive-miss
// threshold); NewMaintainer is the legacy single-miss form.
func NewMaintainerWith(p *Peer, cfg MaintainerConfig) *Maintainer {
	return p2p.NewMaintainerWith(p, cfg)
}

// Content layer: items, Zipf popularity, and the Cohen–Shenker replication
// strategies (paper refs [22], [23]), with random-walk expected-search-size
// and flooding success-rate measurements.
type (
	// Item identifies one data item in a catalog.
	Item = content.Item
	// Catalog is a set of items with Zipf-distributed query popularity.
	Catalog = content.Catalog
	// ReplicationStrategy selects uniform / proportional / square-root
	// replica allocation.
	ReplicationStrategy = content.Strategy
	// Placement records which nodes host which items.
	Placement = content.Placement
	// ESSResult aggregates random-walk query resolution (expected search
	// size) over a workload.
	ESSResult = content.ESSResult
	// FloodQueryResult aggregates flooding query resolution over a
	// workload.
	FloodQueryResult = content.FloodResult
)

// Replication strategies (Cohen & Shenker).
const (
	ReplicateUniform      = content.Uniform
	ReplicateProportional = content.Proportional
	ReplicateSquareRoot   = content.SquareRoot
)

// NewCatalog builds a catalog of numItems items whose query popularity
// follows a Zipf law with the given exponent (alpha=0 is uniform).
func NewCatalog(numItems int, alpha float64) (*Catalog, error) {
	return content.NewCatalog(numItems, alpha)
}

// Replicate places item replicas on n nodes under the given strategy with
// a total budget of copies.
func Replicate(c *Catalog, n, budget int, s ReplicationStrategy, rng *RNG) (*Placement, error) {
	return content.Replicate(c, n, budget, s, rng)
}

// ExpectedSearchSize resolves popularity-distributed queries by random
// walk and reports the mean probe count (Cohen & Shenker's ESS objective).
func ExpectedSearchSize(g *Graph, p *Placement, c *Catalog, queries, maxSteps int, rng *RNG) (ESSResult, error) {
	return content.ExpectedSearchSize(g.Freeze(), p, c, queries, maxSteps, rng)
}

// FloodQuerySuccess resolves popularity-distributed queries by TTL-bounded
// flooding and reports success rate and message cost.
func FloodQuerySuccess(g *Graph, p *Placement, c *Catalog, queries, ttl int, rng *RNG) (FloodQueryResult, error) {
	return content.FloodSuccess(g.Freeze(), p, c, queries, ttl, rng)
}

// Churn simulation: the paper's §VI future work (join/leave dynamics with
// topology maintenance) as a deterministic graph-level laboratory. The
// live message-passing counterpart is the p2p Overlay runtime.
type (
	// ChurnConfig parameterizes a churn simulation.
	ChurnConfig = churn.Config
	// ChurnSimulator evolves one overlay under arrivals and departures.
	ChurnSimulator = churn.Simulator
	// ChurnSnapshot is one periodic overlay-health measurement.
	ChurnSnapshot = churn.Snapshot
	// ChurnStats counts joins, leaves, messages, and repair links.
	ChurnStats = churn.Stats
	// ChurnJoinRule selects the attachment rule for arrivals.
	ChurnJoinRule = churn.JoinRule
	// ChurnRepairPolicy selects the post-departure repair policy.
	ChurnRepairPolicy = churn.RepairPolicy
)

// Churn join rules and repair policies.
const (
	ChurnJoinPreferential = churn.JoinPreferential
	ChurnJoinUniform      = churn.JoinUniform
	ChurnNoRepair         = churn.NoRepair
	ChurnReconnectRepair  = churn.ReconnectRepair
)

// NewChurnSimulator builds a starting PA overlay and wraps it in a churn
// simulator.
func NewChurnSimulator(cfg ChurnConfig, rng *RNG) (*ChurnSimulator, error) {
	return churn.New(cfg, rng)
}

// Behavior makes a live peer uncooperative (lying about degree, refusing
// inbound links, freeriding on relay, or leeching); the zero value is a
// fully cooperative peer. Assign per-peer behaviors in an Overlay with
// OverlayConfig.BehaviorFor.
type Behavior = p2p.Behavior

// RichClubPoint is the rich-club coefficient at one degree threshold.
type RichClubPoint = metrics.RichClubPoint

// RichClub computes the rich-club coefficient phi(k): the edge density
// among nodes of degree > k. Hard cutoffs flatten the hub clubs that
// HAPA's star-like cores otherwise form.
func RichClub(g *Graph) []RichClubPoint { return metrics.RichClub(g.Freeze()) }

// EffectiveDiameter estimates the q-quantile (typically 0.9) of pairwise
// distances from BFS over `sources` random sources — the robust companion
// to Table I's diameter regimes.
func EffectiveDiameter(g *Graph, q float64, sources int, rng *RNG) (int, error) {
	return metrics.EffectiveDiameter(g.Freeze(), q, sources, rng)
}

// PercolationPoint is one sample of the site-percolation curve.
type PercolationPoint = metrics.PercolationPoint

// SitePercolation measures giant-component survival when nodes are kept
// independently with probability p — the random-failure half of §III's
// robust-yet-fragile argument.
func SitePercolation(g *Graph, steps, trials int, rng *RNG) ([]PercolationPoint, error) {
	return metrics.SitePercolation(g, steps, trials, rng)
}

// PercolationThreshold estimates where the giant component first reaches
// the given fraction of the original network.
func PercolationThreshold(pts []PercolationPoint, frac float64) float64 {
	return metrics.PercolationThreshold(pts, frac)
}

// SearchLoad accumulates per-node query-handling work (forwards +
// receipts) across searches — the dynamic counterpart of degree-based
// fairness metrics.
type SearchLoad = search.Load

// NewSearchLoad returns a zeroed accumulator for an n-node graph.
func NewSearchLoad(n int) *SearchLoad { return search.NewLoad(n) }

// FloodLoadProfile charges one flooding search from src to the
// accumulator.
func FloodLoadProfile(g *Graph, src, maxTTL int, load *SearchLoad) error {
	return search.FloodLoad(g.Freeze(), src, maxTTL, load)
}

// NormalizedFloodLoadProfile charges one NF search from src to the
// accumulator.
func NormalizedFloodLoadProfile(g *Graph, src, maxTTL, kMin int, rng *RNG, load *SearchLoad) error {
	return search.NormalizedFloodLoad(g.Freeze(), src, maxTTL, kMin, rng, load)
}

// RandomWalkLoadProfile charges one walk from src to the accumulator.
func RandomWalkLoadProfile(g *Graph, src, steps int, rng *RNG, load *SearchLoad) error {
	return search.RandomWalkLoad(g.Freeze(), src, steps, rng, load)
}
