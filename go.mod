module scalefree

go 1.24
