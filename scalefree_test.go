package scalefree

import (
	"math"
	"testing"
)

// These tests exercise the public façade end to end, as a downstream user
// would: generate, analyze, search, and run a live overlay.

func TestPublicAPIGenerateAndSearch(t *testing.T) {
	t.Parallel()
	rng := NewRNG(1)
	g, _, err := GeneratePA(PAConfig{N: 2000, M: 2, KC: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 || g.MaxDegree() > 40 {
		t.Fatalf("N=%d maxDeg=%d", g.N(), g.MaxDegree())
	}

	fl, err := Flood(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NormalizedFlood(g, 0, 10, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	rw, nfb, err := RandomWalkWithNFBudget(g, 0, 10, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fl.HitsAt(10) < nf.HitsAt(10) {
		t.Fatal("FL should dominate NF in coverage")
	}
	if rw.MessagesAt(10) != nfb.MessagesAt(10) {
		t.Fatal("RW budget mismatch")
	}
}

func TestPublicAPIDegreeAnalysis(t *testing.T) {
	t.Parallel()
	rng := NewRNG(2)
	g, _, err := GenerateCM(CMConfig{N: 20000, M: 1, Gamma: 2.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := DegreeDistribution(g)
	fit, err := FitDegreeExponent(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-2.5) > 0.4 {
		t.Fatalf("fitted gamma %.2f", fit.Gamma)
	}
	if nc := NaturalCutoff(10000, 2, 3); math.Abs(nc-200) > 1e-9 {
		t.Fatalf("natural cutoff %v", nc)
	}
}

func TestPublicAPIDAPAOnSubstrate(t *testing.T) {
	t.Parallel()
	rng := NewRNG(3)
	sub, pts, err := GenerateGRN(GRNConfig{N: 2000, MeanDegree: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2000 {
		t.Fatalf("points %d", len(pts))
	}
	ov, st, err := GenerateDAPA(sub, DAPAConfig{NOverlay: 800, M: 2, KC: 20, TauSub: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Joined != 800 || ov.G.MaxDegree() > 20 {
		t.Fatalf("joined=%d maxDeg=%d", st.Joined, ov.G.MaxDegree())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	t.Parallel()
	rng := NewRNG(4)
	if _, err := GenerateER(100, 200, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateWattsStrogatz(100, 2, 0.1, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateMesh(5, 5); err != nil {
		t.Fatal(err)
	}
	if g := NewGraph(3); g.N() != 3 {
		t.Fatal("NewGraph")
	}
}

func TestPublicAPILiveOverlay(t *testing.T) {
	t.Parallel()
	o, err := NewOverlay(OverlayConfig{M: 2, KC: 10, TauSub: 4, Strategy: JoinDAPA, Seed: 5, DiscoverWindow: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if err := o.Grow(30, func(i int) []string {
		if i == 17 {
			return []string{"target"}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	src := o.Peer(o.Addrs()[0])
	res, err := src.Query("target", SearchFlood, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("hits %v", res.Hits)
	}
}
