// Freeriders: the paper motivates hard cutoffs with "distributed and
// potentially uncooperative environments" (§I). This example makes that
// concrete on the live overlay runtime: populations with a growing
// fraction of uncooperative peers — freeriders that silently drop relayed
// queries, selfish peers that refuse inbound links, and liars that
// advertise inflated degrees to attract preferential attachment — and
// measures what each defection does to search success and topology shape.
//
// Run: go run ./examples/freeriders
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"scalefree"
)

const (
	peers   = 150
	probes  = 40
	ttl     = 7
	windowM = 40 // discovery window, milliseconds
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "freeriders:", err)
		os.Exit(1)
	}
}

// population builds a live overlay of `peers` peers where behaviorFor
// assigns each spawn index its defection, then measures flood-query
// success over deterministic probes and returns topology facts.
func population(seed uint64, behaviorFor func(i int) scalefree.Behavior) (success float64, maxDeg int, rejected int64, err error) {
	o, err := scalefree.NewOverlay(scalefree.OverlayConfig{
		M: 2, KC: 16, TauSub: 4,
		Strategy:       scalefree.JoinDAPA,
		Seed:           seed,
		DiscoverWindow: windowM,
		BehaviorFor:    behaviorFor,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer o.Shutdown()
	for i := 0; i < peers; i++ {
		// A joiner that bootstraps through a selfish peer can fail
		// outright; real clients retry with another bootstrap address.
		p, jerr := o.SpawnJoin(fmt.Sprintf("item-%03d", i))
		for attempt := 0; jerr != nil && p != nil && attempt < 5; attempt++ {
			if _, err := p.Join(o.RandomAddr(), scalefree.JoinDAPA); err == nil {
				jerr = nil
			}
		}
		if jerr != nil {
			return 0, 0, 0, jerr
		}
	}
	addrs := o.Addrs()
	ok := 0
	for i := 0; i < probes; i++ {
		src := o.Peer(addrs[(i*3)%len(addrs)])
		key := fmt.Sprintf("item-%03d", (i*7+11)%peers)
		if src.HasKey(key) {
			key = fmt.Sprintf("item-%03d", (i*7+12)%peers)
		}
		res, err := src.Query(key, scalefree.SearchFlood, ttl)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(res.Hits) > 0 {
			ok++
		}
	}
	g, _ := o.Snapshot()
	for _, a := range addrs {
		rejected += o.Peer(a).Stats().ConnectsRejected
	}
	return float64(ok) / probes, g.MaxDegree(), rejected, nil
}

func run() error {
	fmt.Printf("live overlay, %d peers (DAPA joins, m=2, kc=16), %d flood probes at TTL %d\n\n", peers, probes, ttl)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "population\tquery success\tmax degree\tconnects rejected")

	rows := []struct {
		label string
		b     func(i int) scalefree.Behavior
	}{
		{"all cooperative", nil},
		{"25% freeriders (drop relays)", stripe(4, scalefree.Behavior{DropQueryProb: 1})},
		{"50% freeriders (drop relays)", stripe(2, scalefree.Behavior{DropQueryProb: 1})},
		{"25% selfish (refuse links)", stripe(4, scalefree.Behavior{RefuseConnects: true})},
		{"25% liars (advertise degree 50)", stripe(4, scalefree.Behavior{FakeDegree: 50})},
	}
	for ri, row := range rows {
		succ, maxDeg, rejected, err := population(1000+uint64(ri), row.b)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.0f%%\t%d\t%d\n", row.label, 100*succ, maxDeg, rejected)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - freeriders silently shrink the reachable overlay: success decays with their share;")
	fmt.Println("  - selfish peers force joiners elsewhere (rejections climb) and concentrate load on")
	fmt.Println("    the cooperative rest — the unfairness hard cutoffs exist to bound;")
	fmt.Println("  - degree liars pull preferential joins toward themselves, inflating their real")
	fmt.Println("    degree until the hard cutoff stops them (max degree stays at kc).")
	return nil
}

// stripe returns a BehaviorFor that gives every period-th peer the
// defection (deterministic population mixing). Peer 0 — the bootstrap —
// stays cooperative so the overlay can form at all.
func stripe(period int, b scalefree.Behavior) func(i int) scalefree.Behavior {
	return func(i int) scalefree.Behavior {
		if i > 0 && i%period == 0 {
			return b
		}
		return scalefree.Behavior{}
	}
}
