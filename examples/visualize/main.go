// Visualize: render what a hard cutoff does to an overlay's shape. It
// generates small instances of the paper's four mechanisms with and
// without a cutoff and writes Graphviz DOT files (node size scales with
// degree, so hubs — or their absence — jump out).
//
// Run: go run ./examples/visualize [-outdir dot]
// Then render any file:  sfdp -Tsvg dot/pa-nokc.dot -o pa.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scalefree"
)

const (
	nodes  = 400
	m      = 2
	hardKC = 8
	seed   = 2007
)

func main() {
	outdir := flag.String("outdir", "dot", "directory for .dot files")
	flag.Parse()
	if err := run(*outdir); err != nil {
		fmt.Fprintln(os.Stderr, "visualize:", err)
		os.Exit(1)
	}
}

func run(outdir string) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return fmt.Errorf("mkdir %s: %w", outdir, err)
	}
	type variant struct {
		name string
		gen  func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error)
	}
	variants := []variant{
		{"pa", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: nodes, M: m, KC: kc}, rng)
			return g, err
		}},
		{"cm", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			effKC := kc
			if effKC == scalefree.NoCutoff {
				effKC = nodes
			}
			g, _, err := scalefree.GenerateCM(scalefree.CMConfig{N: nodes, M: m, KC: effKC, Gamma: 2.5}, rng)
			return g, err
		}},
		{"hapa", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			g, _, err := scalefree.GenerateHAPA(scalefree.HAPAConfig{N: nodes, M: m, KC: kc}, rng)
			return g, err
		}},
		{"dapa", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			sub, _, err := scalefree.GenerateGRN(scalefree.GRNConfig{N: 2 * nodes, MeanDegree: 10}, rng)
			if err != nil {
				return nil, err
			}
			ov, _, err := scalefree.GenerateDAPA(sub, scalefree.DAPAConfig{
				NOverlay: nodes, M: m, KC: kc, TauSub: 8,
			}, rng)
			if err != nil {
				return nil, err
			}
			return ov.G, nil
		}},
	}
	cutoffs := []struct {
		slug string
		kc   int
	}{
		{"nokc", scalefree.NoCutoff},
		{fmt.Sprintf("kc%d", hardKC), hardKC},
	}
	for _, v := range variants {
		for _, c := range cutoffs {
			g, err := v.gen(c.kc, scalefree.NewRNG(seed))
			if err != nil {
				return fmt.Errorf("%s %s: %w", v.name, c.slug, err)
			}
			name := fmt.Sprintf("%s-%s", v.name, c.slug)
			path := filepath.Join(outdir, name+".dot")
			if err := writeDOT(path, g, name); err != nil {
				return err
			}
			fmt.Printf("%-12s N=%d  max degree %3d  -> %s\n", name, g.N(), g.MaxDegree(), path)
		}
	}
	fmt.Println("\nrender with graphviz, e.g.:  sfdp -Tsvg dot/hapa-nokc.dot -o hapa.svg")
	fmt.Println("hapa-nokc shows the star-like super-hub core (Fig. 3a); hapa-kc8 shows the")
	fmt.Println("cutoff dissolving it — the paper's §IV-A observation, visible.")
	return nil
}

func writeDOT(path string, g *scalefree.Graph, name string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return g.WriteDOT(f, name)
}
