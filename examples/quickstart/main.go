// Quickstart: generate a scale-free overlay with a hard cutoff, inspect
// its degree distribution, and compare the three search algorithms —
// the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"os"

	"scalefree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := scalefree.NewRNG(42)

	// 1. Build a 10,000-peer overlay by preferential attachment where no
	//    peer accepts more than 40 links (the paper's hard cutoff).
	g, genStats, err := scalefree.GeneratePA(scalefree.PAConfig{N: 10_000, M: 2, KC: 40}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %d peers, %d links, max degree %d (cutoff 40), fallback stubs %d\n",
		g.N(), g.M(), g.MaxDegree(), genStats.Fallbacks)

	// 2. The degree distribution is a power law P(k) ~ k^-gamma with a
	//    spike at the cutoff.
	fit, err := scalefree.FitDegreeExponent(scalefree.DegreeDistribution(g), 2, 0)
	if err != nil {
		return err
	}
	fmt.Printf("degree exponent: gamma = %.2f ± %.2f (natural cutoff would be %.0f)\n",
		fit.Gamma, fit.StdErr, scalefree.NaturalCutoff(g.N(), 2, 3))

	// 3. Compare search efficiency from one source.
	const src, ttl, kMin = 0, 8, 2
	fl, err := scalefree.Flood(g, src, ttl)
	if err != nil {
		return err
	}
	nf, err := scalefree.NormalizedFlood(g, src, ttl, kMin, rng)
	if err != nil {
		return err
	}
	rw, _, err := scalefree.RandomWalkWithNFBudget(g, src, ttl, kMin, rng)
	if err != nil {
		return err
	}
	fmt.Println("\n tau |    FL hits (msgs)   |   NF hits (msgs)  |  RW hits (same budget)")
	for t := 2; t <= ttl; t += 2 {
		fmt.Printf("  %2d | %9d (%7d) | %7d (%6d) | %7d\n",
			t, fl.HitsAt(t), fl.MessagesAt(t), nf.HitsAt(t), nf.MessagesAt(t), rw.HitsAt(t))
	}
	fmt.Println("\nFL sweeps everything but floods the network; NF and RW trade coverage for scalable messaging.")
	return nil
}
