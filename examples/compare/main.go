// Compare: the paper's headline comparison on one screen — all four
// topology construction mechanisms (PA, CM, HAPA, DAPA) crossed with all
// three search algorithms (FL, NF, RW), with and without a hard cutoff.
// It reproduces the qualitative findings of §V-B: hard cutoffs *help* NF
// and RW, m >= 2-3 erases the cutoff penalty for FL, and the local
// mechanisms track the CM optimum.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"scalefree"
)

const (
	nodes    = 4000
	m        = 2
	ttlFL    = 12
	ttlNF    = 8
	sources  = 40
	tauSub   = 10
	hardKC   = 10
	seedBase = 2007
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

type topology struct {
	name string
	gen  func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error)
}

func run() error {
	topos := []topology{
		{"PA", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: nodes, M: m, KC: kc}, rng)
			return g, err
		}},
		{"CM", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			g, _, err := scalefree.GenerateCM(scalefree.CMConfig{N: nodes, M: m, KC: kc, Gamma: 2.6}, rng)
			return g, err
		}},
		{"HAPA", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			g, _, err := scalefree.GenerateHAPA(scalefree.HAPAConfig{N: nodes, M: m, KC: kc}, rng)
			return g, err
		}},
		{"DAPA", func(kc int, rng *scalefree.RNG) (*scalefree.Graph, error) {
			sub, _, err := scalefree.GenerateGRN(scalefree.GRNConfig{N: 2 * nodes, MeanDegree: 10}, rng)
			if err != nil {
				return nil, err
			}
			ov, _, err := scalefree.GenerateDAPA(sub, scalefree.DAPAConfig{
				NOverlay: nodes, M: m, KC: kc, TauSub: tauSub,
			}, rng)
			if err != nil {
				return nil, err
			}
			return ov.G, nil
		}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 6, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "topology\tcutoff\tgamma\tmaxdeg\tFL hits@%d\tNF hits@%d\tRW hits@%d\n", ttlFL, ttlNF, ttlNF)
	for ti, topo := range topos {
		for _, kc := range []int{scalefree.NoCutoff, hardKC} {
			rng := scalefree.NewRNG(uint64(seedBase + ti))
			g, err := topo.gen(kc, rng)
			if err != nil {
				return fmt.Errorf("%s kc=%d: %w", topo.name, kc, err)
			}
			fl, nf, rw, err := measure(g, rng)
			if err != nil {
				return err
			}
			gamma := "-"
			if fit, err := scalefree.FitDegreeExponent(scalefree.DegreeDistribution(g), 1, 0); err == nil {
				gamma = fmt.Sprintf("%.2f", fit.Gamma)
			}
			cut := "none"
			if kc != scalefree.NoCutoff {
				cut = fmt.Sprintf("%d", kc)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.0f\t%.1f\t%.1f\n",
				topo.name, cut, gamma, g.MaxDegree(), fl, nf, rw)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nReadings (paper §V-B): NF/RW rows improve — or hold — under the hard cutoff;")
	fmt.Println("FL loses little at m=2; HAPA/DAPA stay close to the CM optimum for NF and RW.")
	return nil
}

// measure averages FL/NF/RW hits over random sources on one topology,
// frozen once into CSR form and swept with a reused scratch — the
// recommended pattern for many searches against a static overlay.
func measure(g *scalefree.Graph, rng *scalefree.RNG) (fl, nf, rw float64, err error) {
	f := scalefree.Freeze(g)
	scratch := scalefree.NewSearchScratch(f.N())
	for s := 0; s < sources; s++ {
		src := rng.Intn(f.N())
		flr, err := scratch.Flood(f, src, ttlFL)
		if err != nil {
			return 0, 0, 0, err
		}
		fl += float64(flr.HitsAt(ttlFL))
		nfr, err := scratch.NormalizedFlood(f, src, ttlNF, m, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		nf += float64(nfr.HitsAt(ttlNF))
		rwr, _, err := scratch.RandomWalkWithNFBudget(f, src, ttlNF, m, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		rw += float64(rwr.HitsAt(ttlNF))
	}
	n := float64(sources)
	return fl / n, nf / n, rw / n, nil
}
