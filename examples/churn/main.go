// Churn: the paper's future-work scenario (§VI) — peers continuously join
// and leave while the overlay tries to keep its scale-free shape under a
// hard cutoff. We run waves of churn against a live overlay and track
// connectivity, degree spread, and search success over time.
package main

import (
	"fmt"
	"os"

	"scalefree"
)

func seedFor(maintain bool) uint64 {
	if maintain {
		return 14
	}
	return 13
}

const (
	basePeers  = 300
	rounds     = 10
	churnSize  = 30 // leaves + joins per round
	probeTTL   = 6
	probeCount = 20
)

func main() {
	fmt.Println("--- churn WITHOUT maintenance (links decay, reachability erodes) ---")
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("--- churn WITH maintenance (under-connected peers re-join, Overlay.Maintain) ---")
	if err := run(true); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("--- graph-level churn laboratory (deterministic, larger scale) ---")
	if err := runSimulator(); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

// runSimulator drives the deterministic internal/churn laboratory at a
// scale the live runtime would take minutes to reach: balanced churn on a
// kc-capped PA overlay, repair vs no repair, with messaging cost per
// event — exactly the tradeoff §VI poses.
func runSimulator() error {
	const (
		initialN = 2000
		events   = 4000
		pJoin    = 0.5
	)
	for _, repair := range []scalefree.ChurnRepairPolicy{scalefree.ChurnReconnectRepair, scalefree.ChurnNoRepair} {
		sim, err := scalefree.NewChurnSimulator(scalefree.ChurnConfig{
			InitialN: initialN, M: 2, KC: 10,
			Join:     scalefree.ChurnJoinPreferential,
			Repair:   repair,
			Graceful: true,
		}, scalefree.NewRNG(71))
		if err != nil {
			return err
		}
		trace, err := sim.Run(events, pJoin, events/5, 10, 4)
		if err != nil {
			return err
		}
		fmt.Printf("\npolicy %-10s  event | alive | giant%% | gamma | NF hits@4 | msgs/event\n", repair)
		for _, snap := range trace {
			fmt.Printf("%18s %6d | %5d | %5.1f%% | %5.2f | %9.0f | %10.1f\n",
				"", snap.Event, snap.Alive, 100*snap.GiantFrac, snap.Gamma, snap.NFHits, snap.MessagesPerEvent)
		}
	}
	fmt.Println("\nrepair holds the giant component near 100% for a modest per-event message cost;")
	fmt.Println("without repair the overlay frays as departures strand low-degree peers.")
	return nil
}

func run(maintain bool) error {
	o, err := scalefree.NewOverlay(scalefree.OverlayConfig{
		M: 2, KC: 16, TauSub: 5,
		Strategy:       scalefree.JoinDAPA,
		Seed:           seedFor(maintain),
		DiscoverWindow: 50,
	})
	if err != nil {
		return err
	}
	defer o.Shutdown()

	// keyOf remembers which item each live peer shares, so probes can
	// search for content known to exist.
	keyOf := make(map[string]string)
	nextItem := 0
	join := func() error {
		nextItem++
		key := fmt.Sprintf("item-%05d", nextItem)
		p, err := o.SpawnJoin(key)
		if err != nil {
			return err
		}
		keyOf[p.Addr()] = key
		return nil
	}
	for i := 0; i < basePeers; i++ {
		if err := join(); err != nil {
			return err
		}
	}

	rng := scalefree.NewRNG(31)
	fmt.Println("round | peers | links | maxdeg | giant% | search success")
	report := func(round int) error {
		g, _ := o.Snapshot()
		giant := 0
		if g.N() > 0 {
			giant = 100 * len(g.GiantComponent()) / g.N()
		}
		ok, probes, err := probeSearches(o, keyOf, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%5d | %5d | %5d | %6d | %5d%% | %d/%d\n",
			round, g.N(), g.M(), g.MaxDegree(), giant, ok, probes)
		return nil
	}
	if err := report(0); err != nil {
		return err
	}

	for round := 1; round <= rounds; round++ {
		// Departures: half graceful leaves, half crashes.
		for i := 0; i < churnSize; i++ {
			addrs := o.Addrs()
			victim := addrs[rng.Intn(len(addrs))]
			o.Remove(victim, i%2 == 0)
			delete(keyOf, victim)
		}
		// Arrivals: new peers join through surviving members. A join
		// attempt through a just-crashed bootstrap can fail; retry.
		for i := 0; i < churnSize; i++ {
			if err := join(); err != nil {
				if err := join(); err != nil {
					return fmt.Errorf("round %d join: %w", round, err)
				}
			}
		}
		if maintain {
			o.Maintain()
		}
		if err := report(round); err != nil {
			return err
		}
	}
	if maintain {
		fmt.Println("maintenance keeps the giant component and search success high under the")
		fmt.Println("hard cutoff — the paper's §VI challenge, with only local join messages.")
	}
	return nil
}

// probeSearches floods probeCount queries for items known to be alive and
// reports successes.
func probeSearches(o *scalefree.Overlay, keyOf map[string]string, rng *scalefree.RNG) (ok, probes int, err error) {
	addrs := o.Addrs()
	if len(addrs) < 2 {
		return 0, 0, nil
	}
	for i := 0; i < probeCount; i++ {
		srcAddr := addrs[rng.Intn(len(addrs))]
		dstAddr := addrs[rng.Intn(len(addrs))]
		if srcAddr == dstAddr {
			continue
		}
		src := o.Peer(srcAddr)
		key, haveKey := keyOf[dstAddr]
		if src == nil || !haveKey {
			continue
		}
		probes++
		res, err := src.Query(key, scalefree.SearchFlood, probeTTL)
		if err != nil {
			return ok, probes, err
		}
		if len(res.Hits) > 0 {
			ok++
		}
	}
	return ok, probes, nil
}
