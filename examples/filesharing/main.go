// Filesharing: a live Gnutella-like network built with real protocol
// messages. 400 peers join by DAPA using only local discovery, each
// sharing a few files; we then measure how often flooding, normalized
// flooding, and random-walk queries locate popular vs rare files — the
// workload the paper's introduction motivates.
package main

import (
	"fmt"
	"os"

	"scalefree"
)

const (
	peers       = 400
	popularCopy = 40 // replicas of the popular file
	rareCopy    = 2  // replicas of the rare file
	queryTTL    = 6
	trials      = 60
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "filesharing:", err)
		os.Exit(1)
	}
}

func run() error {
	o, err := scalefree.NewOverlay(scalefree.OverlayConfig{
		M: 2, KC: 20, TauSub: 5,
		Strategy:       scalefree.JoinDAPA,
		Seed:           7,
		DiscoverWindow: 50, // ms; in-process replies are fast
	})
	if err != nil {
		return err
	}
	defer o.Shutdown()

	// Every peer shares a unique file; the first popularCopy peers also
	// replicate "song.mp3", and two peers hold "thesis.pdf".
	err = o.Grow(peers, func(i int) []string {
		keys := []string{fmt.Sprintf("file-%04d", i)}
		if i < popularCopy {
			keys = append(keys, "song.mp3")
		}
		if i == peers/2 || i == peers-1 {
			keys = append(keys, "thesis.pdf")
		}
		return keys
	})
	if err != nil {
		return err
	}

	g, _ := o.Snapshot()
	fmt.Printf("live overlay: %d peers, %d links, max degree %d, connected=%v\n",
		g.N(), g.M(), g.MaxDegree(), g.IsConnected())

	rng := scalefree.NewRNG(99)
	for _, item := range []struct {
		key      string
		replicas int
	}{
		{"song.mp3", popularCopy},
		{"thesis.pdf", rareCopy},
	} {
		fmt.Printf("\nsearching %q (%d replicas), %d trials, TTL %d:\n",
			item.key, item.replicas, trials, queryTTL)
		for _, alg := range []scalefree.SearchAlg{scalefree.SearchFlood, scalefree.SearchNF, scalefree.SearchRW} {
			success, totalHits := 0, 0
			addrs := o.Addrs()
			for trial := 0; trial < trials; trial++ {
				src := o.Peer(addrs[rng.Intn(len(addrs))])
				if src.HasKey(item.key) {
					success++ // already local: a free hit
					continue
				}
				res, err := src.Query(item.key, alg, queryTTL)
				if err != nil {
					return err
				}
				if len(res.Hits) > 0 {
					success++
					totalHits += len(res.Hits)
				}
			}
			fmt.Printf("  %-3s: %2d/%d queries succeeded (%d total hits)\n",
				alg, success, trials, totalHits)
		}
	}
	fmt.Println("\nFlooding finds even rare items; NF and RW trade recall for far less traffic —")
	fmt.Println("the unstructured-search tradeoff the paper studies (§II-A).")
	return nil
}
