// Replication: the content layer the paper's searches ultimately serve.
// It builds a PA overlay (with the paper's recommended m=2 and a hard
// cutoff), fills it with a Zipf-popular catalog, and compares the three
// Cohen–Shenker replica-allocation strategies (uniform, proportional,
// square-root; paper refs [22], [23]) on two measurements:
//
//   - expected search size: random-walk probes until the first replica
//     (square-root allocation should win — Cohen & Shenker's theorem);
//   - flooding success rate at small TTLs (the Gnutella deployment view).
//
// Run: go run ./examples/replication
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"scalefree"
)

const (
	nodes    = 5000
	m        = 2
	hardKC   = 40
	items    = 200
	alpha    = 1.1 // Zipf exponent; Gnutella measurements are ~0.6-1.0
	budget   = 2 * nodes
	queries  = 1000
	maxSteps = 50000
	seed     = 2007
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replication:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := scalefree.NewRNG(seed)
	g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: nodes, M: m, KC: hardKC}, rng)
	if err != nil {
		return err
	}
	cat, err := scalefree.NewCatalog(items, alpha)
	if err != nil {
		return err
	}
	fmt.Printf("overlay: PA N=%d m=%d kc=%d; catalog: %d items, Zipf alpha=%.1f, budget %d copies\n\n",
		nodes, m, hardKC, items, alpha, budget)

	strategies := []scalefree.ReplicationStrategy{
		scalefree.ReplicateUniform,
		scalefree.ReplicateProportional,
		scalefree.ReplicateSquareRoot,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\thead copies\ttail copies\tESS (walk probes)\twalk success\tflood hit@TTL3\tflood msgs")
	for _, s := range strategies {
		p, err := scalefree.Replicate(cat, g.N(), budget, s, scalefree.NewRNG(seed+1))
		if err != nil {
			return err
		}
		ess, err := scalefree.ExpectedSearchSize(g, p, cat, queries, maxSteps, scalefree.NewRNG(seed+2))
		if err != nil {
			return err
		}
		fl, err := scalefree.FloodQuerySuccess(g, p, cat, queries, 3, scalefree.NewRNG(seed+3))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.1f%%\t%.1f%%\t%.0f\n",
			s, p.Replicas(0), p.Replicas(scalefree.Item(items-1)),
			ess.MeanSteps, 100*ess.SuccessRate(),
			100*fl.SuccessRate(), fl.MeanMessages)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - square-root allocation should show the lowest ESS (Cohen & Shenker);")
	fmt.Println("  - proportional wins on flood success at tiny TTL (popular items are everywhere)")
	fmt.Println("    but strands the catalog tail — its ESS tail cost shows in the walk column;")
	fmt.Println("  - uniform is the fairness baseline.")
	return nil
}
