// Crawler: map a live overlay the way Gnutella researchers measured real
// networks — by walking it with peer-exchange messages — then analyze the
// crawled topology and compare it against ground truth. Demonstrates the
// whole stack: live runtime -> protocol crawl -> graph analysis.
package main

import (
	"fmt"
	"os"

	"scalefree"
)

const peers = 300

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawler:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Grow a live overlay with DAPA joins under a hard cutoff.
	o, err := scalefree.NewOverlay(scalefree.OverlayConfig{
		M: 2, KC: 20, TauSub: 5,
		Strategy:       scalefree.JoinDAPA,
		Seed:           2007,
		DiscoverWindow: 50,
	})
	if err != nil {
		return err
	}
	defer o.Shutdown()
	if err := o.Grow(peers, nil); err != nil {
		return err
	}

	// 2. Attach a crawler peer (it never joins; it only speaks the
	//    peer-exchange protocol) and map the overlay.
	crawler, err := scalefree.NewPeer(scalefree.PeerConfig{
		Addr: "crawler", M: 1, TauSub: 1, Seed: 1,
	}, o.Net)
	if err != nil {
		return err
	}
	defer crawler.Close()
	res, err := crawler.Crawl(o.Addrs()[0], 0)
	if err != nil {
		return err
	}

	// 3. Compare the crawl against the true topology.
	truth, _ := o.Snapshot()
	fmt.Printf("crawled %d peers / %d edges (truth: %d / %d), %d unresponsive\n",
		res.G.N(), res.G.M(), truth.N(), truth.M(), len(res.Unresponsive))

	// 4. Analyze the crawled graph exactly as one would a real dataset.
	d := scalefree.DegreeDistribution(res.G)
	if fit, err := scalefree.FitDegreeExponent(d, 2, 0); err == nil {
		fmt.Printf("crawled degree exponent: gamma = %.2f ± %.2f\n", fit.Gamma, fit.StdErr)
	}
	crawlMap := res.Frozen() // a finished crawl is read-only: analyze the CSR snapshot
	fmt.Printf("max degree %d (every peer enforced kc=20)\n", crawlMap.MaxDegree())
	if r, err := scalefree.DegreeAssortativity(res.G); err == nil {
		fmt.Printf("assortativity %+.3f, clustering %.4f, max core %d\n",
			r, scalefree.GlobalClustering(res.G), crawlMap.MaxCore())
	}

	// 5. Knock out the top hubs (what an attacker would do with this
	//    map) and show the cutoff's resilience payoff.
	pts, err := scalefree.Robustness(res.G, scalefree.RemoveHighestDegree, 0.05, 0.25, scalefree.NewRNG(9))
	if err != nil {
		return err
	}
	fmt.Printf("targeted attack on the crawl map: giant %.0f%% -> %.0f%% after 25%% removal\n",
		100*pts[0].GiantFrac, 100*pts[len(pts)-1].GiantFrac)
	fmt.Println("\na crawl map is exactly the hit list an attacker needs; run the 'attack'")
	fmt.Println("experiment (cmd/experiments -exp attack) to see how much longer hard-cutoff")
	fmt.Println("topologies survive such attacks than unbounded scale-free ones")
	return nil
}
