package scalefree

// Completeness pass over the façade: every re-exported function is called
// once through the public surface, catching wiring mistakes (wrong
// internal target, swapped arguments) that the internal tests cannot see.

import (
	"testing"
	"time"
)

func TestFacadeTopologyWrappers(t *testing.T) {
	t.Parallel()
	rng := NewRNG(1)
	if _, _, err := GenerateLocalEvents(LocalEventsConfig{N: 400, M: 2, P: 0.2, Q: 0.1}, rng); err != nil {
		t.Fatal(err)
	}
	g, _, err := GeneratePA(PAConfig{N: 600, M: 2, KC: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gi := DegreeGini(g); gi <= 0 || gi >= 1 {
		t.Fatalf("DegreeGini = %v", gi)
	}
	if ts := TopLoadShare(g, 0.01); ts <= 0 || ts > 1 {
		t.Fatalf("TopLoadShare = %v", ts)
	}
	knn := AverageNeighborDegree(g)
	if len(knn) == 0 {
		t.Fatal("AverageNeighborDegree empty")
	}
	d := DegreeDistribution(g)
	if _, err := KSDistance(d, 2.5, 2); err != nil {
		t.Fatal(err)
	}
	if c := GlobalClustering(g); c < 0 || c > 1 {
		t.Fatalf("clustering %v", c)
	}
}

func TestFacadeSearchWrappers(t *testing.T) {
	t.Parallel()
	rng := NewRNG(2)
	g, _, err := GeneratePA(PAConfig{N: 600, M: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := ExpandingRing(g, 0, func(v int) bool { return v == 100 }, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Found {
		t.Fatal("expanding ring missed a reachable node")
	}
	if _, err := RandomWalk(g, 0, 50, rng); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLiveWrappers(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	mk := func(addr string, seed uint64) *Peer {
		p, err := NewPeer(PeerConfig{
			Addr: addr, M: 1, TauSub: 2, Seed: seed,
			DiscoverWindow: 40 * time.Millisecond,
		}, netw)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	a := mk("a", 1)
	b := mk("b", 2)
	mk("c", 3)
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect("c"); err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(a, func() string { return "b" }, JoinDAPA, 10*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	m.Stop()

	// Crawl through the facade type; the crawler excludes its own links,
	// so from a's vantage the map holds b and c.
	var res CrawlResult
	res, err := a.Crawl("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.N() < 2 {
		t.Fatalf("crawl found %d peers", res.G.N())
	}
}

func TestFacadeTCPWrapper(t *testing.T) {
	t.Parallel()
	netw := NewTCPNetwork()
	t.Cleanup(netw.Close)
	inbox := make(chan struct {
		From, To string
	}, 1)
	_ = inbox // the TCP transport is exercised end-to-end in internal/p2p
	p, err := NewPeer(PeerConfig{
		Addr: "127.0.0.1:0", M: 1, TauSub: 2, Seed: 9,
		DiscoverWindow: 100 * time.Millisecond,
	}, netw)
	if err != nil {
		// Port-0 identity quirk: the peer registers under the literal
		// string; dialing it fails but registration must succeed.
		t.Fatalf("NewPeer over TCP: %v", err)
	}
	p.Close()
}
