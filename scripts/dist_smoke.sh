#!/usr/bin/env bash
# dist_smoke.sh — end-to-end chaos check for distributed runs (PR 10).
# The coordinator/worker protocol's whole promise is that distribution
# and failure cost time, never bits: leases expire and are reissued when
# workers die, the coordinator journals everything and resumes its own
# crashes, and the final reduction replays the journal in index order.
# This script exercises that promise the way production would:
#
#   1. reference run: fig9 + desflood at smoke scale, local, uninterrupted
#   2. distributed run: one coordinator, three workers over TCP
#   3. SIGKILL one worker mid-run (its lease must be stolen)
#   4. SIGKILL the coordinator mid-run, restart it with -resume
#   5. every reference CSV must compare byte-identical, and the output
#      dir must hold no leftover journals or .tmp-* rename droppings
#
# If the coordinator finishes before a kill lands (fast machine), that
# kill degrades to a no-op and the byte-identity check still runs — same
# convention as resume_smoke.sh.
#
# Usage: scripts/dist_smoke.sh [workdir]

set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${1:-$(mktemp -d)}"
BIN="$WORK/experiments"
REF="$WORK/ref"
RUN="$WORK/run"
mkdir -p "$REF" "$RUN"

COMMON=(-exp fig9,desflood -scale smoke -seed 2007 -plot=false)
DIST=(-lease-ttl 3s -heartbeat 500ms)

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do
    kill "$p" 2>/dev/null || true
  done
}
trap cleanup EXIT

echo ">>> building cmd/experiments" >&2
go build -o "$BIN" ./cmd/experiments

echo ">>> reference run (local, uninterrupted)" >&2
"$BIN" "${COMMON[@]}" -outdir "$REF" >/dev/null

PORT="$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')"
ADDR="127.0.0.1:$PORT"

echo ">>> coordinator + 3 workers on $ADDR" >&2
"$BIN" "${COMMON[@]}" "${DIST[@]}" -outdir "$RUN" \
  -mode coordinator -coord-addr "$ADDR" >"$WORK/coord1.log" 2>&1 &
COORD=$!
PIDS+=("$COORD")
WORKERS=()
for i in 1 2 3; do
  "$BIN" -mode worker -coord-addr "$ADDR" >"$WORK/worker$i.log" 2>&1 &
  WORKERS+=("$!")
  PIDS+=("$!")
done

sleep 2
if kill -9 "${WORKERS[0]}" 2>/dev/null; then
  echo ">>> SIGKILLed worker pid ${WORKERS[0]} mid-run (lease must be stolen)" >&2
else
  echo ">>> first worker already gone before the kill" >&2
fi

sleep 3
if kill -9 "$COORD" 2>/dev/null; then
  echo ">>> SIGKILLed coordinator pid $COORD mid-run; restarting with -resume" >&2
  wait "$COORD" 2>/dev/null || true
  timeout 300 "$BIN" "${COMMON[@]}" "${DIST[@]}" -outdir "$RUN" \
    -mode coordinator -coord-addr "$ADDR" -resume >"$WORK/coord2.log" 2>&1
else
  echo ">>> coordinator finished before the kill; checking the uninterrupted distributed run" >&2
  wait "$COORD" 2>/dev/null || true
fi

# The session-ending coordinator dismisses the fleet; give the surviving
# workers a moment to exit on the shutdown message.
for _ in $(seq 1 50); do
  ALIVE=0
  for w in "${WORKERS[@]:1}"; do
    kill -0 "$w" 2>/dev/null && ALIVE=1
  done
  [ "$ALIVE" -eq 0 ] && break
  sleep 0.2
done

echo ">>> comparing CSVs" >&2
FAIL=0
CHECKED=0
for ref in "$REF"/*.csv; do
  base="$(basename "$ref")"
  if ! cmp -s "$ref" "$RUN/$base"; then
    echo "FAIL: $base differs between local and distributed runs" >&2
    FAIL=1
  fi
  CHECKED=$((CHECKED + 1))
done
if [ "$CHECKED" -eq 0 ]; then
  echo "FAIL: reference run produced no CSVs" >&2
  FAIL=1
fi

# A settled distributed session must tidy up like a local one: journals
# are deleted after full success and atomic writes never leave .tmp-*.
LEFTOVERS="$(find "$RUN" -name '*.journal' -o -name '*.tmp-*' | head -5)"
if [ -n "$LEFTOVERS" ]; then
  echo "FAIL: leftovers after distributed run:" >&2
  echo "$LEFTOVERS" >&2
  FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
  echo "--- coord1.log ---" >&2; tail -20 "$WORK/coord1.log" >&2 || true
  echo "--- coord2.log ---" >&2; tail -20 "$WORK/coord2.log" >&2 || true
  exit 1
fi
echo "OK: $CHECKED CSVs byte-identical after worker SIGKILL + coordinator kill/resume, no leftovers" >&2
