#!/usr/bin/env bash
# bench.sh — run the kernel-level benchmarks and emit a JSON snapshot of
# the performance trajectory (benchmark name -> ns/op, B/op, allocs/op).
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR4.json
#   scripts/bench.sh out.json        # custom output path
#   BENCHTIME=2s scripts/bench.sh    # longer sampling (default 0.5s)
#
# Covered suites:
#   internal/graph    Freeze cost, HasEdge map-vs-CSR point probes
#   internal/search   Reference (pre-CSR) vs Scratch (CSR) kernels,
#                     including the Scratch strategy kernels (0 allocs/op)
#                     and the prefetch on/off flood pair
#   internal/metrics  clustering coefficient, map probes vs CSR scan
#   .                 end-to-end search throughput + the three-stage
#                     (workers x source-shards x gen-workers) scheduler
#                     grid
#
# The Reference* benchmarks preserve the pre-CSR implementations in-tree
# (see internal/search/reference_test.go, internal/metrics/bench_test.go),
# so every future run re-measures the before/after gap on current
# hardware instead of trusting stale numbers.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR4.json}"
BENCHTIME="${BENCHTIME:-0.5s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run() { # run <pkg> <pattern>
  echo ">>> go test -bench '$2' -benchtime $BENCHTIME $1" >&2
  go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -benchmem "$1" | tee -a "$raw" >&2
}

run ./internal/graph .
run ./internal/search .
run ./internal/metrics .
run . 'BenchmarkSearches|BenchmarkWorkersScaling'

awk '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns     = $(i-1)
    if ($i == "B/op")      bytes  = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
  }
  if (ns == "") next
  if (n++) printf ",\n"
  printf "  %c%s%c: {%cns_op%c: %s", 34, name, 34, 34, 34, ns
  if (bytes  != "") printf ", %cB_op%c: %s", 34, 34, bytes
  if (allocs != "") printf ", %callocs_op%c: %s", 34, 34, allocs
  printf "}"
}
BEGIN { printf "{\n" }
END   { printf "\n}\n" }
' "$raw" > "$OUT"

echo "wrote $OUT ($(grep -c ns_op "$OUT") benchmarks)" >&2
