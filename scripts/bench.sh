#!/usr/bin/env bash
# bench.sh — run the kernel-level benchmarks and emit a JSON snapshot of
# the performance trajectory (benchmark name -> ns/op, B/op, allocs/op).
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR9.json
#   scripts/bench.sh out.json        # custom output path
#   BENCHTIME=2s scripts/bench.sh    # longer sampling (default 0.5s)
#
# Covered suites:
#   internal/xrand    power-law degree sampling: the exact math.Pow kernel
#                     vs the inverse-CDF threshold table (incl. the xl
#                     natural-cutoff regime)
#   internal/graph    Freeze cost, HasEdge map-vs-CSR point probes, and
#                     the PR 9 estimators (pivot-sampled betweenness with
#                     stderr, landmark path stats)
#   internal/search   Reference (pre-CSR) vs Scratch (CSR) kernels,
#                     including the Scratch strategy kernels (0 allocs/op)
#                     and the prefetch on/off flood pair
#   internal/gen      CM/GRN build pairs: legacy mutable-Graph+Freeze vs
#                     direct-CSR (CSRBuilder), fresh and arena-pooled
#   internal/metrics  clustering coefficient, map probes vs CSR scan
#   internal/des      message-level DES flood/k-walk vs the CSR flood
#                     baseline on the same topology (0 allocs/op steady
#                     state)
#   internal/p2p      fault-injection overhead: raw InMemoryNetwork send
#                     vs the zero-fault FaultyNetwork fast path (must sit
#                     within noise) vs the full lossy draw path
#   .                 end-to-end search throughput + the three-stage
#                     (workers x source-shards x gen-workers) scheduler
#                     grid
#
# The Reference* benchmarks preserve the pre-CSR implementations in-tree
# (see internal/search/reference_test.go, internal/metrics/bench_test.go),
# so every future run re-measures the before/after gap on current
# hardware instead of trusting stale numbers.
#
# The snapshot records host metadata under "_host" (CPU count, GOMAXPROCS,
# go version, OS): 1-core container runs show flat scaling grids that are
# meaningless on multicore hardware, and the metadata is what lets a
# reader tell those snapshots apart.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR9.json}"
BENCHTIME="${BENCHTIME:-0.5s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run() { # run <pkg> <pattern>
  echo ">>> go test -bench '$2' -benchtime $BENCHTIME $1" >&2
  go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -benchmem "$1" | tee -a "$raw" >&2
}

run ./internal/xrand 'BenchmarkPowerLaw'
run ./internal/graph .
run ./internal/search .
run ./internal/metrics .
run ./internal/des .
run ./internal/p2p 'BenchmarkInMemorySend|BenchmarkFaultySend'
run . 'BenchmarkSearches|BenchmarkWorkersScaling|BenchmarkExtDES'

# The build pair runs a fixed iteration count instead of a time budget:
# a CM build is ~300 ms, so a time-based budget samples so few
# iterations that the arena variants' first-build warm-up (buffers grown
# once, reused forever after) dominates their average. Ten iterations
# per benchmark keeps the steady state visible.
BUILD_BENCHTIME="${BUILD_BENCHTIME:-10x}"
BENCHTIME="$BUILD_BENCHTIME" run ./internal/gen 'BenchmarkCMBuild|BenchmarkGRNBuild'

CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
GOMAX="${GOMAXPROCS:-$CPUS}"
GOVER="$(go env GOVERSION)"
HOST_OS="$(uname -sr)"

awk -v cpus="$CPUS" -v gomax="$GOMAX" -v gover="$GOVER" -v hostos="$HOST_OS" -v benchtime="$BENCHTIME" -v buildbenchtime="$BUILD_BENCHTIME" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""; snapshot = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")         ns       = $(i-1)
    if ($i == "B/op")          bytes    = $(i-1)
    if ($i == "allocs/op")     allocs   = $(i-1)
    if ($i == "snapshotB/op")  snapshot = $(i-1)
  }
  if (ns == "") next
  printf ",\n"
  printf "  %c%s%c: {%cns_op%c: %s", 34, name, 34, 34, 34, ns
  if (bytes    != "") printf ", %cB_op%c: %s", 34, 34, bytes
  if (allocs   != "") printf ", %callocs_op%c: %s", 34, 34, allocs
  if (snapshot != "") printf ", %csnapshot_B_op%c: %s", 34, 34, snapshot
  printf "}"
}
BEGIN {
  printf "{\n"
  printf "  %c_host%c: {%ccpus%c: %s, %cgomaxprocs%c: %s, %cgo%c: %c%s%c, %cos%c: %c%s%c, %cbenchtime%c: %c%s%c, %cbuild_benchtime%c: %c%s%c}", \
    34, 34, 34, 34, cpus, 34, 34, gomax, 34, 34, 34, gover, 34, 34, 34, 34, hostos, 34, 34, 34, 34, benchtime, 34, 34, 34, 34, buildbenchtime, 34
}
END   { printf "\n}\n" }
' "$raw" > "$OUT"

echo "wrote $OUT ($(grep -c ns_op "$OUT") benchmarks)" >&2
