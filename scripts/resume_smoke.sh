#!/usr/bin/env bash
# resume_smoke.sh — end-to-end crash/resume check for the experiment
# journal (PR 8). The strongest claim the journal makes is that a run
# killed with SIGKILL — no signal handler, no flush, no goodbye — resumes
# into byte-identical CSVs, even when the resumed process uses DIFFERENT
# scheduler knobs (workers / source-shards / gen-workers). This script
# checks exactly that claim:
#
#   1. reference run: fig9 at smoke scale, uninterrupted
#   2. victim run: same spec into a fresh dir, SIGKILLed mid-flight
#   3. resume run: -resume with different parallelism
#   4. every reference CSV must compare byte-identical, and the output
#      dir must hold no leftover journals or .tmp-* rename droppings
#
# If the victim finishes before the kill lands (fast machine), the kill
# is a no-op and the check degrades to "resume of a complete run is
# byte-identical" — still a real property, so the script proceeds.
#
# Usage: scripts/resume_smoke.sh [workdir]

set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${1:-$(mktemp -d)}"
BIN="$WORK/experiments"
REF="$WORK/ref"
RUN="$WORK/run"
mkdir -p "$REF" "$RUN"

COMMON=(-exp fig9 -scale smoke -seed 2007 -plot=false)

echo ">>> building cmd/experiments" >&2
go build -o "$BIN" ./cmd/experiments

echo ">>> reference run (uninterrupted)" >&2
"$BIN" "${COMMON[@]}" -outdir "$REF" >/dev/null

echo ">>> victim run (SIGKILL mid-flight)" >&2
"$BIN" "${COMMON[@]}" -outdir "$RUN" -workers 2 >/dev/null 2>&1 &
VICTIM=$!
sleep 3
if kill -9 "$VICTIM" 2>/dev/null; then
  echo ">>> killed pid $VICTIM" >&2
else
  echo ">>> victim finished before the kill; resuming a complete run instead" >&2
fi
wait "$VICTIM" 2>/dev/null || true

echo ">>> resume run (different scheduler knobs)" >&2
"$BIN" "${COMMON[@]}" -outdir "$RUN" -resume \
  -workers 3 -source-shards 2 -gen-workers 1 >/dev/null

echo ">>> comparing CSVs" >&2
FAIL=0
CHECKED=0
for ref in "$REF"/*.csv; do
  base="$(basename "$ref")"
  if ! cmp -s "$ref" "$RUN/$base"; then
    echo "FAIL: $base differs after kill+resume" >&2
    FAIL=1
  fi
  CHECKED=$((CHECKED + 1))
done
if [ "$CHECKED" -eq 0 ]; then
  echo "FAIL: reference run produced no CSVs" >&2
  FAIL=1
fi

# A clean finish must tidy up: journals are deleted after a fully
# successful run, and atomic writes never leave .tmp-* behind.
LEFTOVERS="$(find "$RUN" -name '*.journal' -o -name '*.tmp-*' | head -5)"
if [ -n "$LEFTOVERS" ]; then
  echo "FAIL: leftovers after clean resume:" >&2
  echo "$LEFTOVERS" >&2
  FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
  exit 1
fi
echo "OK: $CHECKED CSVs byte-identical after SIGKILL + -resume, no leftovers" >&2
