// Command searchsim runs search-efficiency experiments on a topology: it
// loads an edge list (or generates a PA topology inline) and prints mean
// hits and messages per TTL for flooding, normalized flooding, and the
// NF-budget random walk, averaged over random sources.
//
// Usage:
//
//	topogen -model pa -n 10000 -m 2 -kc 40 -o pa.edges
//	searchsim -in pa.edges -alg nf -kmin 2 -ttl 10 -sources 100
//	searchsim -n 10000 -m 2 -kc 40 -alg all -ttl 10
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"scalefree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "searchsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "edge-list file (empty: generate PA inline)")
		n       = flag.Int("n", 10000, "nodes for inline PA generation")
		m       = flag.Int("m", 2, "stubs for inline PA generation")
		kc      = flag.Int("kc", 0, "hard cutoff for inline PA generation")
		alg     = flag.String("alg", "all", "algorithm: fl|nf|rw|all")
		kmin    = flag.Int("kmin", 0, "NF fan-out (default m)")
		ttl     = flag.Int("ttl", 10, "maximum TTL")
		sources = flag.Int("sources", 100, "random sources averaged")
		seed    = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()
	if *kmin <= 0 {
		*kmin = *m
	}

	g, err := load(*in, *n, *m, *kc, *seed)
	if err != nil {
		return err
	}
	rng := scalefree.NewRNG(*seed + 1)

	algs := []string{"fl", "nf", "rw"}
	if *alg != "all" {
		algs = []string{*alg}
	}
	// The whole workload sweeps one static topology: freeze it once and
	// run every search allocation-free on the CSR snapshot.
	f := scalefree.Freeze(g)
	scratch := scalefree.NewSearchScratch(f.N())
	type row struct {
		hits, msgs []float64
	}
	results := map[string]row{}
	for _, a := range algs {
		hits := make([]float64, *ttl+1)
		msgs := make([]float64, *ttl+1)
		for s := 0; s < *sources; s++ {
			src := rng.Intn(f.N())
			var res scalefree.SearchResult
			switch a {
			case "fl":
				res, err = scratch.Flood(f, src, *ttl)
			case "nf":
				res, err = scratch.NormalizedFlood(f, src, *ttl, *kmin, rng)
			case "rw":
				res, _, err = scratch.RandomWalkWithNFBudget(f, src, *ttl, *kmin, rng)
			default:
				return fmt.Errorf("unknown algorithm %q", a)
			}
			if err != nil {
				return err
			}
			for t := 0; t <= *ttl; t++ {
				hits[t] += float64(res.HitsAt(t))
				msgs[t] += float64(res.MessagesAt(t))
			}
		}
		for t := range hits {
			hits[t] /= float64(*sources)
			msgs[t] /= float64(*sources)
		}
		results[a] = row{hits, msgs}
	}

	fmt.Printf("topology: nodes=%d edges=%d maxdeg=%d; %d sources, kmin=%d\n",
		g.N(), g.M(), g.MaxDegree(), *sources, *kmin)
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "tau")
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s hits\t%s msgs", a, a)
	}
	fmt.Fprintln(tw)
	for t := 1; t <= *ttl; t++ {
		fmt.Fprintf(tw, "%d", t)
		for _, a := range algs {
			fmt.Fprintf(tw, "\t%.1f\t%.1f", results[a].hits[t], results[a].msgs[t])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func load(path string, n, m, kc int, seed uint64) (*scalefree.Graph, error) {
	if path == "" {
		g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: n, M: m, KC: kc}, scalefree.NewRNG(seed))
		return g, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "searchsim: close:", cerr)
		}
	}()
	return scalefree.ReadEdgeList(f)
}
