package main

import (
	"os"
	"path/filepath"
	"testing"

	"scalefree"
)

func TestLoadInlinePA(t *testing.T) {
	t.Parallel()
	g, err := load("", 500, 2, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 || g.MaxDegree() > 20 {
		t.Fatalf("N=%d maxdeg=%d", g.N(), g.MaxDegree())
	}
}

func TestLoadFromFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: 200, M: 2}, scalefree.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := load(path, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 200 || got.M() != g.M() {
		t.Fatalf("loaded N=%d M=%d, want %d/%d", got.N(), got.M(), g.N(), g.M())
	}
}

func TestLoadMissingFile(t *testing.T) {
	t.Parallel()
	if _, err := load("/nonexistent/file.edges", 0, 0, 0, 0); err == nil {
		t.Fatal("missing file should error")
	}
}
