// Command experiments regenerates the paper's tables and figures. Each
// experiment writes one CSV per figure panel into the output directory and
// prints an ASCII rendering to stdout.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig6 -scale smoke -outdir results
//	experiments -exp all  -scale paper -outdir results   # hours at paper scale
//	experiments -exp fig9 -workers 4                     # bound realization concurrency
//	experiments -exp fig6 -source-shards 1               # serial source sweeps
//	experiments -exp fig9 -gen-workers 4                 # bound the pipelined build stage
//	experiments -scale xl                                # N=10^6 degree distributions
//	experiments -exp fig9 -cpuprofile cpu.pprof          # profile a hot experiment
//	experiments -mode des                                # message-level DES specs
//	experiments -mode des -loss 0.05 -latency-jitter 2   # single loss rate, wider jitter
//	experiments -mode des -exp desfail -fail-frac 0.2    # 20% failure sweep
//	experiments -exp all -scale paper -resume            # continue a killed run
//	experiments -exp fig9 -retries 2 -max-failed 1       # tolerate flaky realizations
//	experiments -mode coordinator -coord-addr :9009 -exp fig9   # serve work leases
//	experiments -mode worker -coord-addr host:9009              # claim and execute leases
//
// -workers bounds how many realizations are swept concurrently within
// each experiment (default 0 = GOMAXPROCS), -source-shards bounds how many
// sources of one realization are swept concurrently against its shared
// frozen topology (default 0 = automatic: workers × shards fills
// GOMAXPROCS), and -gen-workers bounds the pipelined build stage that
// generates and freezes upcoming realizations while earlier ones are being
// swept (default 0 = match workers; also the intra-generator parallelism
// budget when realizations are scarcer than the bound). The output is
// bit-for-bit identical for every (workers, source-shards, gen-workers)
// combination; see EXPERIMENTS.md.
//
// -mode selects the simulation substrate: "csr" (default) runs the
// algorithmic kernels; "des" runs the message-level discrete-event specs
// (desflood, deskwalk, desfail), where -latency-base/-latency-jitter set
// the per-edge delay model (both unset = 1 + U[0,1)), -loss pins a single
// message-loss rate (unset = sweep {0, 2%, 10%}), and -fail-frac/-fail-mtbf
// shape the desfail failure schedule (unset = sweep {0, 10%, 20%, 30%} with
// MTBF 2). With -mode des and no explicit -exp, the DES spec family runs;
// -exp still selects any spec.
//
// Crash safety (see EXPERIMENTS.md "Checkpoint / resume"): by default each
// spec checkpoints completed realizations to <outdir>/<exp>.journal;
// -resume replays them and produces byte-identical CSVs to an
// uninterrupted run. -retries re-attempts failed realizations
// deterministically, -max-failed absorbs permanent failures into partial
// figures with explicit accounting, and -stall-timeout arms a watchdog
// that dumps all goroutine stacks when no realization progresses.
// SIGINT/SIGTERM stops at the next realization boundary, flushes the
// journal and profiles, and exits with status 3 (distinct from status 1
// errors); journals of interrupted or partial specs are kept, and clean
// journals are removed only after the whole run succeeds.
//
// The xl scale runs an order of magnitude past the paper (10⁶-node degree
// distributions, 10⁵-node search topologies) on the CSR-frozen read path,
// and covers the full registry: the formerly superlinear specs run on
// estimators with published uncertainty — batched Brandes–Pich pivot
// betweenness for the attack spec (-bc-pivots), landmark BFS path
// statistics for table1 (-path-landmarks/-path-pairs), and capped
// random-walk delivery budgets with truncation accounting (-walk-cap).
// See EXPERIMENTS.md "Estimators & budgets" for the agreement-gate
// contract behind each.
//
// Distributed runs (see EXPERIMENTS.md "Distributed runs"): -mode
// coordinator serves (spec, realization) work leases on -coord-addr and
// journals the records workers stream back; -mode worker claims leases
// from -coord-addr, executes each leased realization under the shared
// (seed, realization, phase) stream contract, and streams the records
// home. Leases expire after -lease-ttl without a heartbeat (interval
// -heartbeat, default ttl/5) and are reissued, so crashed or partitioned
// workers only cost time. The coordinator's final reduction replays its
// journal and recomputes anything the fleet never delivered — CSVs are
// byte-identical to a local run no matter how many workers ran, died, or
// straggled. A killed coordinator resumes with -resume.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, so performance PRs can attach flame-graph evidence. All
// artifacts — CSVs and profiles — are written to a temp file and renamed
// into place, so no exit path can leave a truncated file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"scalefree/internal/coord"
	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, sim.ErrInterrupted) {
			os.Exit(3) // partial run, resumable — distinct from hard failure
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale      = fs.String("scale", "smoke", "experiment scale: smoke|paper|xl")
		seed       = fs.Uint64("seed", 2007, "RNG seed (the venue year, for luck)")
		outdir     = fs.String("outdir", "results", "directory for CSV output")
		list       = fs.Bool("list", false, "list available experiments and exit")
		verify     = fs.Bool("verify", false, "check the paper's headline claims and exit")
		plot       = fs.Bool("plot", true, "print ASCII renderings to stdout")
		workers    = fs.Int("workers", 0, "concurrent realizations per experiment (0 = GOMAXPROCS); results are identical for any value")
		shards     = fs.Int("source-shards", 0, "concurrent sources per realization (0 = automatic: workers x shards fills GOMAXPROCS); results are identical for any value")
		genWorkers = fs.Int("gen-workers", 0, "pipelined build-stage bound: concurrent topology builds, and intra-generator parallelism when realizations are scarce (0 = match workers); results are identical for any value")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the last experiment")
		mode       = fs.String("mode", "csr", "simulation substrate: csr (algorithmic kernels) or des (message-level discrete-event)")
		latBase    = fs.Float64("latency-base", 0, "DES fixed per-edge delay component (with -latency-jitter both 0: defaults to 1+U[0,1))")
		latJitter  = fs.Float64("latency-jitter", 0, "DES per-edge uniform delay component scale")
		loss       = fs.Float64("loss", 0, "DES message loss rate in [0,1); 0 sweeps the default series {0, 0.02, 0.10}")
		failFrac   = fs.Float64("fail-frac", 0, "desfail failure fraction in [0,1); 0 sweeps the default series {0, 0.10, 0.20, 0.30}")
		failMTBF   = fs.Float64("fail-mtbf", 0, "desfail mean time before a selected element goes down (0 = default 2 time units)")
		checkpoint = fs.Bool("checkpoint", true, "journal completed realizations to <outdir>/<exp>.journal for -resume")
		resume     = fs.Bool("resume", false, "resume from an existing journal: replay completed realizations, recompute the rest; output is byte-identical to an uninterrupted run")
		retries    = fs.Int("retries", 1, "deterministic re-attempts per failed realization (panic or error) before it counts as permanently failed")
		maxFailed  = fs.Int("max-failed", 0, "permanently failed realizations tolerated per experiment before aborting; survivors produce partial figures with explicit accounting")
		stall      = fs.Duration("stall-timeout", 10*time.Minute, "dump all goroutine stacks if no realization progresses for this long (0 disables)")
		coordAddr  = fs.String("coord-addr", "", "coordinator endpoint: the listen address in -mode coordinator, the coordinator's address in -mode worker")
		listenAddr = fs.String("listen", "127.0.0.1:0", "-mode worker: this worker's reply/listen address (port 0 = ephemeral)")
		leaseTTL   = fs.Duration("lease-ttl", 10*time.Second, "-mode coordinator: lease expiry without a heartbeat before a realization is reissued")
		heartbeat  = fs.Duration("heartbeat", 0, "-mode coordinator: lease renewal interval workers are told to use (0 = lease-ttl/5)")
		bcPivots   = fs.Int("bc-pivots", 0, "attack spec: Brandes-Pich pivots per batched betweenness step (0 = scale default; >= N prices steps with exact Brandes)")
		pathLand   = fs.Int("path-landmarks", 0, "table1: landmark BFS passes for estimated path stats (0 = scale default; exact sampled BFS when the scale sets none)")
		pathPairs  = fs.Int("path-pairs", 0, "table1: sampled node pairs per realization for the landmark estimator (0 = scale default)")
		walkCap    = fs.Int("walk-cap", 0, "delivery spec: cap per-pair random-walk budget at min(200*N, cap) steps (0 = scale default; truncations are reported in figure notes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	expSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})

	if *list {
		for _, s := range sim.Registry() {
			fmt.Fprintf(stdout, "%-10s %-12s %s\n", s.ID, s.Paper, s.Description)
		}
		return nil
	}

	var sc sim.Scale
	switch *scale {
	case "smoke":
		sc = sim.SmokeScale
	case "paper":
		sc = sim.PaperScale
	case "xl":
		sc = sim.XLScale
	default:
		return fmt.Errorf("unknown scale %q (want smoke, paper, or xl)", *scale)
	}
	sc.Workers = *workers
	sc.SourceShards = *shards
	sc.GenWorkers = *genWorkers
	for name, v := range map[string]int{
		"-bc-pivots": *bcPivots, "-path-landmarks": *pathLand,
		"-path-pairs": *pathPairs, "-walk-cap": *walkCap,
	} {
		if v < 0 {
			return fmt.Errorf("%s %d must be >= 0", name, v)
		}
	}
	// Estimator knobs: explicit flags win over the scale preset (xl sets
	// estimator defaults; smoke and paper default to exact measurements).
	if *bcPivots > 0 {
		sc.BCPivots = *bcPivots
	}
	if *pathLand > 0 {
		sc.PathLandmarks = *pathLand
	}
	if *pathPairs > 0 {
		sc.PathPairs = *pathPairs
	}
	if *walkCap > 0 {
		sc.WalkCap = *walkCap
	}

	applyDES := func() error {
		if *loss < 0 || *loss >= 1 {
			return fmt.Errorf("-loss %v out of range [0, 1)", *loss)
		}
		if *failFrac < 0 || *failFrac >= 1 {
			return fmt.Errorf("-fail-frac %v out of range [0, 1)", *failFrac)
		}
		if *failMTBF < 0 {
			return fmt.Errorf("-fail-mtbf %v must be >= 0", *failMTBF)
		}
		sc.DESLatencyBase = *latBase
		sc.DESLatencyJitter = *latJitter
		sc.DESLoss = *loss
		sc.DESFailFrac = *failFrac
		sc.DESFailMTBF = *failMTBF
		return nil
	}
	switch *mode {
	case "csr":
	case "des":
		if err := applyDES(); err != nil {
			return err
		}
		if !expSet {
			*exp = "desflood,deskwalk,desfail"
		}
	case "coordinator":
		// The coordinator accepts the DES knobs too: its -exp selection may
		// include DES specs, and the workload (knobs included) ships to the
		// fleet inside every lease.
		if *coordAddr == "" {
			return errors.New("-mode coordinator requires -coord-addr (the listen address for worker claims)")
		}
		if *leaseTTL <= 0 {
			return fmt.Errorf("-lease-ttl %v must be > 0", *leaseTTL)
		}
		if *heartbeat < 0 {
			return fmt.Errorf("-heartbeat %v must be >= 0", *heartbeat)
		}
		if err := applyDES(); err != nil {
			return err
		}
	case "worker":
		if *coordAddr == "" {
			return errors.New("-mode worker requires -coord-addr (the coordinator's address)")
		}
	default:
		return fmt.Errorf("unknown mode %q (want csr, des, coordinator, or worker)", *mode)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d must be >= 0", *retries)
	}
	if *maxFailed < 0 {
		return fmt.Errorf("-max-failed %d must be >= 0", *maxFailed)
	}

	// Signals interrupt cooperatively: the first one cancels the run
	// context, which the engines observe at realization boundaries so the
	// journal stays a clean prefix; the second force-quits. The done
	// channel unhooks everything on return — run() is also called from
	// tests, which must not leak handlers.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case s := <-sigc:
			fmt.Fprintf(os.Stderr, "experiments: received %v; stopping at the next realization boundary (journal kept for -resume; repeat to force quit)\n", s)
			cancel(fmt.Errorf("received %v", s))
		case <-done:
			return
		}
		select {
		case s := <-sigc:
			fmt.Fprintf(os.Stderr, "experiments: received %v again; forcing exit\n", s)
			os.Exit(130)
		case <-done:
		}
	}()

	prof, err := startProfiler(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	// stop() runs on every exit path — interrupt, spec error, success — so
	// profiles are finalized (and renamed into place) even when the run
	// does not reach its happy path.
	defer prof.stop()

	if *verify {
		scv := sc
		scv.Run = sim.NewRunControl(ctx, *retries, *maxFailed, nil)
		return runVerify(stdout, scv, *seed)
	}

	if *mode == "worker" {
		return runWorkerMode(ctx, *coordAddr, *listenAddr, *retries)
	}

	// Coordinator mode: one lease server spans every selected spec; the
	// fleet survives across specs and is dismissed when the session ends.
	var distSrv *coord.Server
	if *mode == "coordinator" {
		tnet := p2p.NewTCPNetwork()
		defer tnet.Close()
		srv, err := coord.NewServer(tnet, *coordAddr)
		if err != nil {
			return err
		}
		distSrv = srv
		defer srv.Close()
		defer srv.ShutdownWorkers()
		fmt.Fprintf(os.Stderr, "experiments: coordinator serving leases on %s\n", srv.Addr())
	}

	if *scale == "xl" && !expSet && *mode == "csr" {
		fmt.Fprintln(os.Stderr, "experiments: xl runs the full registry; attack/table1/delivery use estimators with published uncertainty (see EXPERIMENTS.md \"Estimators & budgets\")")
	}

	var specs []sim.Spec
	if *exp == "all" {
		specs = sim.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			s, err := sim.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return fmt.Errorf("mkdir %s: %w", *outdir, err)
	}

	// Coordinator mode journals unconditionally: the journal is where the
	// fleet's streamed records land, the dedup substrate for stolen leases,
	// and the resume point if the coordinator itself dies.
	useJournal := *checkpoint || *resume || distSrv != nil
	var cleanJournals []string
	anyFailures := false
	for _, spec := range specs {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s: %s)...\n", spec.ID, spec.Paper, spec.Description)
		var j *sim.Journal
		if useJournal {
			var err error
			j, err = sim.OpenJournal(filepath.Join(*outdir, spec.ID+".journal"), spec.ID, *seed, sc, *resume)
			if err != nil {
				return err
			}
			if n := j.Resumed(); n > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %s: resuming with %d journaled realization record(s)\n", spec.ID, n)
			}
		}
		if distSrv != nil {
			if spec.Distributable {
				dstats, derr := distSrv.RunJob(ctx, coord.JobConfig{
					Spec: spec.ID, Seed: *seed, Scale: sc,
					LeaseTTL: *leaseTTL, Heartbeat: *heartbeat, WorkerRetries: *retries,
				}, j)
				if derr != nil {
					if cerr := j.Close(); cerr != nil {
						fmt.Fprintln(os.Stderr, "experiments: close journal:", cerr)
					}
					if errors.Is(derr, context.Canceled) {
						fmt.Fprintf(os.Stderr, "experiments: %s interrupted; journal kept at %s — rerun with -resume to continue\n", spec.ID, j.Path())
						return fmt.Errorf("%s: %w", spec.ID, sim.ErrInterrupted)
					}
					return fmt.Errorf("%s: %w", spec.ID, derr)
				}
				fmt.Fprintf(os.Stderr, "experiments: %s: fleet settled %d/%d realization(s) (%d lease(s) issued, %d stolen, %d record(s) journaled)\n",
					spec.ID, dstats.Done, sc.Realizations, dstats.LeasesIssued, dstats.Reissued, dstats.Accepted)
				if dstats.GivenUp > 0 {
					fmt.Fprintf(os.Stderr, "experiments: %s: %d realization(s) given up by the fleet; recomputing locally in the final reduction\n", spec.ID, dstats.GivenUp)
				}
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %s is not distributable (results bypass the journal); running locally\n", spec.ID)
			}
		}
		// In coordinator mode this local run IS the final reduction: the
		// journal replays every record the fleet streamed, in index order,
		// and recomputes anything lost or given up — byte-identical to a
		// purely local run by the (seed, realization, phase) contract.
		rc := sim.NewRunControl(ctx, *retries, *maxFailed, j)
		stopWatch := rc.StartWatchdog(*stall, os.Stderr)
		scRun := sc
		scRun.Run = rc
		figs, err := spec.Run(scRun, *seed)
		stopWatch()
		if cerr := j.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			if useJournal && errors.Is(err, sim.ErrInterrupted) {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted; journal kept at %s — rerun with -resume to continue\n", spec.ID, j.Path())
			}
			return fmt.Errorf("%s: %w", spec.ID, err)
		}
		if n := rc.Recovered(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s: %d realization(s) recovered by retry\n", spec.ID, n)
		}
		if failures := rc.Failures(); len(failures) > 0 {
			anyFailures = true
			fmt.Fprintf(os.Stderr, "experiments: %s completed with %d permanently failed realization(s) within the -max-failed budget:\n", spec.ID, len(failures))
			for _, fr := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", fr)
			}
			note := fmt.Sprintf("PARTIAL: %d realization(s) failed permanently and are excluded from the averages", len(failures))
			for i := range figs {
				if figs[i].Notes != "" {
					figs[i].Notes += "; "
				}
				figs[i].Notes += note
			}
			if useJournal {
				fmt.Fprintf(os.Stderr, "experiments: journal kept at %s (failed realizations re-run on -resume)\n", j.Path())
			}
		} else if useJournal {
			cleanJournals = append(cleanJournals, j.Path())
		}
		for _, fig := range figs {
			path := filepath.Join(*outdir, fig.ID+".csv")
			if err := writeCSV(path, fig); err != nil {
				return err
			}
			if *plot {
				fmt.Fprintln(stdout, sim.RenderTable(fig))
				if len(fig.Series) > 0 && len(fig.Series[0].Points) > 1 {
					fmt.Fprintln(stdout, sim.RenderPlot(fig, 72, 20))
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %s (%d panels)\n", spec.ID, time.Since(start).Round(time.Millisecond), len(figs))
	}
	// Drop clean journals only now, after every selected spec succeeded:
	// until this point a crash in spec k still resumes specs 0..k-1 for
	// free (their journals replay fully). With any partial spec in the
	// run, everything is kept so -resume can fill the holes.
	if !anyFailures {
		for _, p := range cleanJournals {
			if err := os.Remove(p); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: remove journal:", err)
			}
		}
	}
	return nil
}

// runWorkerMode serves one worker process: claim leases from the
// coordinator at coordAddr, execute each leased realization, stream the
// records back, repeat until the coordinator dismisses the fleet. A
// SIGINT/SIGTERM (cancelled ctx) exits cleanly without a farewell — the
// coordinator reissues whatever the worker held.
func runWorkerMode(ctx context.Context, coordAddr, listen string, retries int) error {
	tnet := p2p.NewTCPNetwork()
	defer tnet.Close()
	stats, err := coord.RunWorker(ctx, tnet, coord.WorkerConfig{
		CoordAddr: coordAddr, Addr: listen, Retries: retries,
	})
	fmt.Fprintf(os.Stderr, "experiments: worker exiting: %d lease(s), %d record(s) streamed, %d completion(s), %d failure(s)\n",
		stats.Leases, stats.Records, stats.Completions, stats.Failures)
	if err != nil && errors.Is(err, context.Canceled) {
		// Interrupted by signal: normal fleet operations, not a failure.
		return nil
	}
	return err
}

// profiler owns the pprof artifacts. Both profiles stream/land in a temp
// file first and are renamed into place by stop(), which every exit path
// reaches via defer — a crash or interrupt can leave a stray .tmp-* at
// worst, never a truncated profile under the requested name.
type profiler struct {
	cpuPath, memPath string
	cpuTmp           *os.File
	stopped          bool
}

func startProfiler(cpuPath, memPath string) (*profiler, error) {
	p := &profiler{cpuPath: cpuPath, memPath: memPath}
	if cpuPath != "" {
		f, err := os.CreateTemp(filepath.Dir(cpuPath), filepath.Base(cpuPath)+".tmp-*")
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuTmp = f
	}
	return p, nil
}

// stop finalizes the profiles; idempotent so explicit calls and the defer
// in run() compose.
func (p *profiler) stop() {
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	if p.cpuTmp != nil {
		pprof.StopCPUProfile()
		tmp := p.cpuTmp.Name()
		err := p.cpuTmp.Sync()
		if cerr := p.cpuTmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, p.cpuPath)
		}
		if err != nil {
			os.Remove(tmp)
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
		}
	}
	if p.memPath != "" {
		runtime.GC() // materialize the steady-state heap before writing
		if err := atomicWrite(p.memPath, func(f *os.File) error {
			return pprof.WriteHeapProfile(f)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
		}
	}
}

// runVerify checks every machine-checkable paper claim and reports
// PASS/FAIL; it exits non-zero if any claim fails. Claims marked as
// documented fidelity deviations report DEVIA and never fail the run —
// the measurement stays on record, the expected outcome is "not
// reproduced".
func runVerify(stdout io.Writer, sc sim.Scale, seed uint64) error {
	results := sim.CheckAllClaims(sc, seed)
	failed, deviations := 0, 0
	for _, r := range results {
		status := "PASS"
		switch {
		case r.Err != nil:
			status = "ERROR"
			failed++
		case r.Deviation != "":
			status = "DEVIA"
			deviations++
		case !r.Pass:
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "[%-5s] %-28s %s\n", status, r.ID, r.Statement)
		if r.Detail != "" {
			fmt.Fprintf(stdout, "        measured: %s\n", r.Detail)
		}
		if r.Deviation != "" {
			fmt.Fprintf(stdout, "        deviation: %s\n", r.Deviation)
		}
		if r.Err != nil {
			fmt.Fprintf(stdout, "        error: %v\n", r.Err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d claims failed", failed, len(results))
	}
	fmt.Fprintf(stdout, "%d/%d paper claims verified (%d documented deviations)\n",
		len(results)-deviations, len(results), deviations)
	return nil
}

// atomicWrite fills a temp file in path's directory and renames it into
// place, so no reader (or crash) ever observes a truncated artifact.
func atomicWrite(path string, fill func(f *os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	tmp := f.Name()
	err = fill(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func writeCSV(path string, fig sim.Figure) error {
	return atomicWrite(path, func(f *os.File) error {
		return sim.WriteCSV(f, fig)
	})
}
