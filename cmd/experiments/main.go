// Command experiments regenerates the paper's tables and figures. Each
// experiment writes one CSV per figure panel into the output directory and
// prints an ASCII rendering to stdout.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig6 -scale smoke -outdir results
//	experiments -exp all  -scale paper -outdir results   # hours at paper scale
//	experiments -exp fig9 -workers 4                     # bound realization concurrency
//	experiments -exp fig6 -source-shards 1               # serial source sweeps
//	experiments -exp fig9 -gen-workers 4                 # bound the pipelined build stage
//	experiments -scale xl                                # N=10^6 degree distributions
//	experiments -exp fig9 -cpuprofile cpu.pprof          # profile a hot experiment
//	experiments -mode des                                # message-level DES specs
//	experiments -mode des -loss 0.05 -latency-jitter 2   # single loss rate, wider jitter
//	experiments -mode des -exp desfail -fail-frac 0.2    # 20% failure sweep
//
// -workers bounds how many realizations are swept concurrently within
// each experiment (default 0 = GOMAXPROCS), -source-shards bounds how many
// sources of one realization are swept concurrently against its shared
// frozen topology (default 0 = automatic: workers × shards fills
// GOMAXPROCS), and -gen-workers bounds the pipelined build stage that
// generates and freezes upcoming realizations while earlier ones are being
// swept (default 0 = match workers; also the intra-generator parallelism
// budget when realizations are scarcer than the bound). The output is
// bit-for-bit identical for every (workers, source-shards, gen-workers)
// combination; see EXPERIMENTS.md.
//
// -mode selects the simulation substrate: "csr" (default) runs the
// algorithmic kernels; "des" runs the message-level discrete-event specs
// (desflood, deskwalk, desfail), where -latency-base/-latency-jitter set
// the per-edge delay model (both unset = 1 + U[0,1)), -loss pins a single
// message-loss rate (unset = sweep {0, 2%, 10%}), and -fail-frac/-fail-mtbf
// shape the desfail failure schedule (unset = sweep {0, 10%, 20%, 30%} with
// MTBF 2). With -mode des and no explicit -exp, the DES spec family runs;
// -exp still selects any spec.
//
// The xl scale runs an order of magnitude past the paper (10⁶-node degree
// distributions, 10⁵-node search topologies) on the CSR-frozen read path;
// with -exp left at its default it runs the degree-distribution flagship
// rather than the full registry, since several extension experiments are
// superlinear in N.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, so performance PRs can attach flame-graph evidence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"scalefree/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale      = fs.String("scale", "smoke", "experiment scale: smoke|paper|xl")
		seed       = fs.Uint64("seed", 2007, "RNG seed (the venue year, for luck)")
		outdir     = fs.String("outdir", "results", "directory for CSV output")
		list       = fs.Bool("list", false, "list available experiments and exit")
		verify     = fs.Bool("verify", false, "check the paper's headline claims and exit")
		plot       = fs.Bool("plot", true, "print ASCII renderings to stdout")
		workers    = fs.Int("workers", 0, "concurrent realizations per experiment (0 = GOMAXPROCS); results are identical for any value")
		shards     = fs.Int("source-shards", 0, "concurrent sources per realization (0 = automatic: workers x shards fills GOMAXPROCS); results are identical for any value")
		genWorkers = fs.Int("gen-workers", 0, "pipelined build-stage bound: concurrent topology builds, and intra-generator parallelism when realizations are scarce (0 = match workers); results are identical for any value")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the last experiment")
		mode       = fs.String("mode", "csr", "simulation substrate: csr (algorithmic kernels) or des (message-level discrete-event)")
		latBase    = fs.Float64("latency-base", 0, "DES fixed per-edge delay component (with -latency-jitter both 0: defaults to 1+U[0,1))")
		latJitter  = fs.Float64("latency-jitter", 0, "DES per-edge uniform delay component scale")
		loss       = fs.Float64("loss", 0, "DES message loss rate in [0,1); 0 sweeps the default series {0, 0.02, 0.10}")
		failFrac   = fs.Float64("fail-frac", 0, "desfail failure fraction in [0,1); 0 sweeps the default series {0, 0.10, 0.20, 0.30}")
		failMTBF   = fs.Float64("fail-mtbf", 0, "desfail mean time before a selected element goes down (0 = default 2 time units)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	expSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})

	if *list {
		for _, s := range sim.Registry() {
			fmt.Fprintf(stdout, "%-10s %-12s %s\n", s.ID, s.Paper, s.Description)
		}
		return nil
	}

	var sc sim.Scale
	switch *scale {
	case "smoke":
		sc = sim.SmokeScale
	case "paper":
		sc = sim.PaperScale
	case "xl":
		sc = sim.XLScale
	default:
		return fmt.Errorf("unknown scale %q (want smoke, paper, or xl)", *scale)
	}
	sc.Workers = *workers
	sc.SourceShards = *shards
	sc.GenWorkers = *genWorkers

	switch *mode {
	case "csr":
	case "des":
		if *loss < 0 || *loss >= 1 {
			return fmt.Errorf("-loss %v out of range [0, 1)", *loss)
		}
		if *failFrac < 0 || *failFrac >= 1 {
			return fmt.Errorf("-fail-frac %v out of range [0, 1)", *failFrac)
		}
		if *failMTBF < 0 {
			return fmt.Errorf("-fail-mtbf %v must be >= 0", *failMTBF)
		}
		sc.DESLatencyBase = *latBase
		sc.DESLatencyJitter = *latJitter
		sc.DESLoss = *loss
		sc.DESFailFrac = *failFrac
		sc.DESFailMTBF = *failMTBF
		if !expSet {
			*exp = "desflood,deskwalk,desfail"
		}
	default:
		return fmt.Errorf("unknown mode %q (want csr or des)", *mode)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "experiments: close cpuprofile:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer func() {
				if cerr := mf.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "experiments: close memprofile:", cerr)
				}
			}()
			runtime.GC() // materialize the steady-state heap before writing
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *verify {
		return runVerify(stdout, sc, *seed)
	}

	if *scale == "xl" && !expSet && *mode == "csr" {
		// The full registry at xl would run for days (several extension
		// experiments are superlinear in N); the unset default becomes the
		// degree-distribution flagship, the artifact the xl scale exists
		// for. An explicit -exp (including `-exp all`) is honored as given.
		*exp = "fig1a"
		fmt.Fprintln(os.Stderr, "experiments: xl scale defaults to the degree-distribution flagship (fig1a); pass -exp to select others")
	}

	var specs []sim.Spec
	if *exp == "all" {
		specs = sim.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			s, err := sim.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return fmt.Errorf("mkdir %s: %w", *outdir, err)
	}

	for _, spec := range specs {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s: %s)...\n", spec.ID, spec.Paper, spec.Description)
		figs, err := spec.Run(sc, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.ID, err)
		}
		for _, fig := range figs {
			path := filepath.Join(*outdir, fig.ID+".csv")
			if err := writeCSV(path, fig); err != nil {
				return err
			}
			if *plot {
				fmt.Fprintln(stdout, sim.RenderTable(fig))
				if len(fig.Series) > 0 && len(fig.Series[0].Points) > 1 {
					fmt.Fprintln(stdout, sim.RenderPlot(fig, 72, 20))
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %s (%d panels)\n", spec.ID, time.Since(start).Round(time.Millisecond), len(figs))
	}
	return nil
}

// runVerify checks every machine-checkable paper claim and reports
// PASS/FAIL; it exits non-zero if any claim fails. Claims marked as
// documented fidelity deviations report DEVIA and never fail the run —
// the measurement stays on record, the expected outcome is "not
// reproduced".
func runVerify(stdout io.Writer, sc sim.Scale, seed uint64) error {
	results := sim.CheckAllClaims(sc, seed)
	failed, deviations := 0, 0
	for _, r := range results {
		status := "PASS"
		switch {
		case r.Err != nil:
			status = "ERROR"
			failed++
		case r.Deviation != "":
			status = "DEVIA"
			deviations++
		case !r.Pass:
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "[%-5s] %-28s %s\n", status, r.ID, r.Statement)
		if r.Detail != "" {
			fmt.Fprintf(stdout, "        measured: %s\n", r.Detail)
		}
		if r.Deviation != "" {
			fmt.Fprintf(stdout, "        deviation: %s\n", r.Deviation)
		}
		if r.Err != nil {
			fmt.Fprintf(stdout, "        error: %v\n", r.Err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d claims failed", failed, len(results))
	}
	fmt.Fprintf(stdout, "%d/%d paper claims verified (%d documented deviations)\n",
		len(results)-deviations, len(results), deviations)
	return nil
}

func writeCSV(path string, fig sim.Figure) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return sim.WriteCSV(f, fig)
}
