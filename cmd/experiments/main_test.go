package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunList(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig1a", "fig12", "table1", "strategies", "replication", "churn"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestRunUnknownScale(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunSingleExperimentWritesCSV(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", dir, "-plot=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Errorf("fig1c CSV should have header + data rows:\n%s", data)
	}
	if !strings.Contains(lines[0], "series") {
		t.Errorf("missing header: %s", lines[0])
	}
}

func TestRunDESModeWritesCSV(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	args := []string{"-mode", "des", "-loss", "0.05", "-exp", "desflood", "-outdir", dir, "-plot=false"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"desflood-hits.csv", "desflood-time.csv", "desflood-msgs.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestRunDESModeDefaultsToDESSpecs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	args := []string{"-mode", "des", "-loss", "0.2", "-latency-jitter", "2", "-outdir", dir, "-plot=false"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"desflood-hits.csv", "deskwalk-hits.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestRunBadMode(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-mode", "quantum"}, &buf); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestRunBadLoss(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-mode", "des", "-loss", "1.5"}, &buf); err == nil {
		t.Fatal("out-of-range loss should fail")
	}
}

func TestRunCommaSeparatedExperiments(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "table2, fig1c", "-outdir", dir, "-plot=true"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table2.csv", "fig1c.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	if !strings.Contains(buf.String(), "Table II") && !strings.Contains(buf.String(), "locality") {
		// RenderTable output should mention the artifact in some form.
		t.Logf("plot output: %.200s", buf.String())
	}
}

func TestRunCleanSuccessLeavesNoJournalOrTemp(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", dir, "-plot=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1c.csv")); err != nil {
		t.Fatal(err)
	}
	// Checkpointing is on by default, but a clean run must tidy up: no
	// journals and no half-renamed .tmp-* files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".journal") || strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("clean run left %s behind", e.Name())
		}
	}
}

func TestRunResumeWithoutJournalIsFreshRun(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", dir, "-plot=false", "-resume"}, &buf); err != nil {
		t.Fatalf("-resume on an empty outdir should run fresh: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1c.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunResumeRejectsCorruptJournal(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig1c.journal"), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", dir, "-plot=false", "-resume"}, &buf); err == nil {
		t.Fatal("resume from a corrupt journal should fail loudly, not silently recompute")
	}
}

func TestRunRejectsNegativeSupervisionFlags(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-retries", "-1"}, &buf); err == nil {
		t.Fatal("-retries -1 should fail")
	}
	if err := run([]string{"-max-failed", "-1"}, &buf); err == nil {
		t.Fatal("-max-failed -1 should fail")
	}
}

func TestRunRejectsNegativeEstimatorFlags(t *testing.T) {
	t.Parallel()
	for _, flag := range []string{"-bc-pivots", "-path-landmarks", "-path-pairs", "-walk-cap"} {
		var buf strings.Builder
		if err := run([]string{flag, "-1"}, &buf); err == nil {
			t.Errorf("%s -1 should fail", flag)
		}
	}
}

func TestRunEstimatorPathSmoke(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	args := []string{
		"-exp", "table1", "-path-landmarks", "4", "-path-pairs", "50",
		"-outdir", dir, "-plot=true",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) < 5 {
		t.Errorf("table1 CSV should have header + data rows:\n%s", data)
	}
	// The rendered table carries the figure notes, which must document the
	// landmark estimator when it is active.
	if !strings.Contains(buf.String(), "landmark") {
		t.Errorf("estimator run output missing landmark documentation: %.300s", buf.String())
	}
}

func TestRunCoordinatorModeRequiresAddr(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-mode", "coordinator"}, &buf); err == nil {
		t.Fatal("coordinator mode without -coord-addr should fail")
	}
	if err := run([]string{"-mode", "worker"}, &buf); err == nil {
		t.Fatal("worker mode without -coord-addr should fail")
	}
	if err := run([]string{"-mode", "coordinator", "-coord-addr", ":0", "-lease-ttl", "-1s"}, &buf); err == nil {
		t.Fatal("negative -lease-ttl should fail")
	}
}

// freeLocalAddr grabs an ephemeral localhost port for a
// coordinator/worker pair to meet on.
func freeLocalAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestRunDistributedCoordinatorWorkerTCP is the CLI end to end over real
// TCP: one coordinator process-equivalent and one worker, meeting on a
// localhost port, distributing fig1c — and the CSVs must be byte-identical
// to a plain local run, with no journals or temp files left behind.
func TestRunDistributedCoordinatorWorkerTCP(t *testing.T) {
	t.Parallel()
	local := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", local, "-plot=false"}, &buf); err != nil {
		t.Fatal(err)
	}

	addr := freeLocalAddr(t)
	dist := t.TempDir()
	workerDone := make(chan error, 1)
	go func() {
		var wbuf strings.Builder
		workerDone <- run([]string{"-mode", "worker", "-coord-addr", addr}, &wbuf)
	}()
	var cbuf strings.Builder
	err := run([]string{
		"-mode", "coordinator", "-coord-addr", addr,
		"-exp", "fig1c", "-outdir", dist, "-plot=false",
	}, &cbuf)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	select {
	case werr := <-workerDone:
		if werr != nil {
			t.Errorf("worker: %v", werr)
		}
	case <-time.After(60 * time.Second):
		t.Error("worker did not exit after coordinator shutdown")
	}

	want, err := os.ReadFile(filepath.Join(local, "fig1c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dist, "fig1c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("distributed fig1c.csv differs from local run (%d vs %d bytes)", len(got), len(want))
	}
	entries, err := os.ReadDir(dist)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".journal") || strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("distributed run left %s behind", e.Name())
		}
	}
}
