package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig1a", "fig12", "table1", "strategies", "replication", "churn"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestRunUnknownScale(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunSingleExperimentWritesCSV(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "fig1c", "-outdir", dir, "-plot=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Errorf("fig1c CSV should have header + data rows:\n%s", data)
	}
	if !strings.Contains(lines[0], "series") {
		t.Errorf("missing header: %s", lines[0])
	}
}

func TestRunCommaSeparatedExperiments(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-exp", "table2, fig1c", "-outdir", dir, "-plot=true"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table2.csv", "fig1c.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	if !strings.Contains(buf.String(), "Table II") && !strings.Contains(buf.String(), "locality") {
		// RenderTable output should mention the artifact in some form.
		t.Logf("plot output: %.200s", buf.String())
	}
}
