// Command churnsim runs the graph-level churn laboratory (paper §VI
// future work): an overlay under a configurable arrival/departure process
// with a hard cutoff, printing periodic health snapshots and, optionally,
// a CSV trace.
//
// Usage:
//
//	churnsim -n 2000 -events 4000 -pjoin 0.5 -kc 10 -repair reconnect
//	churnsim -n 2000 -events 4000 -repair none -csv trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"scalefree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("churnsim", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 2000, "initial overlay size (PA, m stubs)")
		m       = fs.Int("m", 2, "stubs per joining peer / repair target")
		kc      = fs.Int("kc", 10, "hard degree cutoff (0 = none)")
		events  = fs.Int("events", 4000, "churn events to run")
		pJoin   = fs.Float64("pjoin", 0.5, "probability an event is a join (rest are leaves)")
		joinStr = fs.String("join", "preferential", "join rule: preferential|uniform")
		repair  = fs.String("repair", "reconnect", "repair policy: reconnect|none")
		crash   = fs.Bool("crash", false, "departures crash silently instead of announcing")
		probes  = fs.Int("probes", 8, "snapshots across the run")
		sources = fs.Int("sources", 10, "NF probe sources per snapshot")
		ttl     = fs.Int("ttl", 4, "NF probe TTL")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		csvPath = fs.String("csv", "", "write the snapshot trace as CSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pJoin < 0 || *pJoin > 1 {
		return fmt.Errorf("pjoin %v must be in [0,1]", *pJoin)
	}
	if *events < 1 {
		return fmt.Errorf("events %d must be >= 1", *events)
	}

	var join scalefree.ChurnJoinRule
	switch *joinStr {
	case "preferential":
		join = scalefree.ChurnJoinPreferential
	case "uniform":
		join = scalefree.ChurnJoinUniform
	default:
		return fmt.Errorf("unknown join rule %q", *joinStr)
	}
	var policy scalefree.ChurnRepairPolicy
	switch *repair {
	case "reconnect":
		policy = scalefree.ChurnReconnectRepair
	case "none":
		policy = scalefree.ChurnNoRepair
	default:
		return fmt.Errorf("unknown repair policy %q", *repair)
	}

	sim, err := scalefree.NewChurnSimulator(scalefree.ChurnConfig{
		InitialN: *n, M: *m, KC: *kc,
		Join:     join,
		Repair:   policy,
		Graceful: !*crash,
	}, scalefree.NewRNG(*seed))
	if err != nil {
		return err
	}

	probeEvery := *events / *probes
	if probeEvery < 1 {
		probeEvery = 1
	}
	trace, err := sim.Run(*events, *pJoin, probeEvery, *sources, *ttl)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "churn: N0=%d m=%d kc=%d events=%d pjoin=%.2f join=%s repair=%s graceful=%v\n\n",
		*n, *m, *kc, *events, *pJoin, join, policy, !*crash)
	fmt.Fprintln(out, "event | alive | mean deg | max deg | giant% | gamma | NF hits | msgs/event")
	for _, s := range trace {
		fmt.Fprintf(out, "%5d | %5d | %8.2f | %7d | %5.1f%% | %5.2f | %7.0f | %10.1f\n",
			s.Event, s.Alive, s.MeanDegree, s.MaxDegree, 100*s.GiantFrac, s.Gamma, s.NFHits, s.MessagesPerEvent)
	}
	st := sim.Stats()
	fmt.Fprintf(out, "\ntotals: joins=%d leaves=%d messages=%d repair-links=%d failed-stubs=%d\n",
		st.Joins, st.Leaves, st.Messages, st.RepairLinks, st.FailedStubs)

	if *csvPath != "" {
		if err := writeTrace(*csvPath, trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s\n", *csvPath)
	}
	return nil
}

func writeTrace(path string, trace []scalefree.ChurnSnapshot) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"event", "alive", "mean_degree", "max_degree", "giant_frac", "gamma", "nf_hits", "msgs_per_event"}); err != nil {
		return err
	}
	for _, s := range trace {
		rec := []string{
			strconv.Itoa(s.Event),
			strconv.Itoa(s.Alive),
			strconv.FormatFloat(s.MeanDegree, 'f', 4, 64),
			strconv.Itoa(s.MaxDegree),
			strconv.FormatFloat(s.GiantFrac, 'f', 6, 64),
			strconv.FormatFloat(s.Gamma, 'f', 4, 64),
			strconv.FormatFloat(s.NFHits, 'f', 2, 64),
			strconv.FormatFloat(s.MessagesPerEvent, 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
