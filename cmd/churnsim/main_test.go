package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{"-n", "300", "-events", "200", "-probes", "4", "-sources", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"churn: N0=300", "event | alive", "totals: joins="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var buf strings.Builder
	err := run([]string{"-n", "300", "-events", "100", "-probes", "2", "-sources", "0", "-csv", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace CSV too short:\n%s", data)
	}
	if !strings.HasPrefix(lines[0], "event,alive,mean_degree") {
		t.Errorf("header: %s", lines[0])
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	cases := [][]string{
		{"-pjoin", "1.5"},
		{"-events", "0"},
		{"-join", "teleport"},
		{"-repair", "duct-tape"},
		{"-no-such-flag"},
		{"-n", "2", "-m", "2"}, // too small for the seed clique
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunUniformNoRepairCrash(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{
		"-n", "300", "-events", "150", "-probes", "3", "-sources", "0",
		"-join", "uniform", "-repair", "none", "-crash",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "repair-links=0") {
		t.Errorf("no-repair run should create no repair links:\n%s", buf.String())
	}
}
