// Command peerd runs a single live overlay peer on TCP. Peers discover
// each other and attach with the paper's local join protocols; queries can
// be issued from the command line of any peer.
//
// Start a bootstrap peer:
//
//	peerd -listen 127.0.0.1:7001 -keys alpha,beta
//
// Join more peers and search:
//
//	peerd -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7001 -join dapa -keys gamma
//	peerd -listen 127.0.0.1:7003 -bootstrap 127.0.0.1:7001 -join hapa \
//	      -query alpha -alg fl -ttl 5
//
// Without -query, peerd serves until interrupted, printing a status line
// every -status interval.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalefree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "peerd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("peerd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7001", "TCP listen address (this peer's identity)")
		bootstrap = fs.String("bootstrap", "", "bootstrap peer address (empty: start a new overlay)")
		joinStrat = fs.String("join", "dapa", "join strategy: dapa|hapa|random")
		m         = fs.Int("m", 2, "links to establish when joining")
		kc        = fs.Int("kc", 40, "hard degree cutoff (0 = none)")
		tau       = fs.Int("tau", 4, "discovery TTL tau_sub")
		keys      = fs.String("keys", "", "comma-separated content keys to share")
		query     = fs.String("query", "", "issue one query, print hits, and exit")
		alg       = fs.String("alg", "fl", "query algorithm: fl|nf|rw")
		ttl       = fs.Int("ttl", 6, "query TTL")
		window    = fs.Duration("window", 500*time.Millisecond, "reply collection window")
		status    = fs.Duration("status", 10*time.Second, "status print interval")
		seed      = fs.Uint64("seed", uint64(os.Getpid()), "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategy scalefree.JoinStrategy
	switch *joinStrat {
	case "dapa":
		strategy = scalefree.JoinDAPA
	case "hapa":
		strategy = scalefree.JoinHAPA
	case "random":
		strategy = scalefree.JoinRandom
	default:
		return fmt.Errorf("unknown join strategy %q", *joinStrat)
	}
	var keyList []string
	if *keys != "" {
		keyList = strings.Split(*keys, ",")
	}

	net := scalefree.NewTCPNetwork()
	defer net.Close()
	peer, err := scalefree.NewPeer(scalefree.PeerConfig{
		Addr: *listen, M: *m, KC: *kc, TauSub: *tau,
		Keys: keyList, Seed: *seed, DiscoverWindow: *window,
	}, net)
	if err != nil {
		return err
	}
	defer peer.Leave()
	fmt.Fprintf(out, "peerd: listening on %s (m=%d kc=%d tau=%d keys=%v)\n", *listen, *m, *kc, *tau, keyList)

	if *bootstrap != "" {
		made, err := peer.Join(*bootstrap, strategy)
		if err != nil {
			return fmt.Errorf("join via %s: %w", *bootstrap, err)
		}
		fmt.Fprintf(out, "peerd: joined via %s (%s), %d links\n", *bootstrap, strategy, made)
	}

	if *query != "" {
		res, err := peer.Query(*query, scalefree.SearchAlg(*alg), *ttl)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "peerd: query %q (%s, ttl=%d): %d hits in %s\n",
			*query, *alg, *ttl, len(res.Hits), res.Elapsed.Round(time.Millisecond))
		for _, h := range res.Hits {
			fmt.Fprintf(out, "  hit: %s (degree %d)\n", h.Addr, h.Degree)
		}
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*status)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := peer.Stats()
			fmt.Fprintf(out, "peerd: degree=%d sent=%d recv=%d queries=%d hits-served=%d\n",
				peer.Degree(), st.Sent, st.Received, st.QueriesSeen, st.HitsServed)
		case s := <-sig:
			fmt.Fprintf(out, "peerd: %v, leaving overlay\n", s)
			return nil
		}
	}
}
