// Command peerd runs a single live overlay peer on TCP. Peers discover
// each other and attach with the paper's local join protocols; queries can
// be issued from the command line of any peer.
//
// Start a bootstrap peer:
//
//	peerd -listen 127.0.0.1:7001 -keys alpha,beta
//
// Join more peers and search:
//
//	peerd -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7001 -join dapa -keys gamma
//	peerd -listen 127.0.0.1:7003 -bootstrap 127.0.0.1:7001 -join hapa \
//	      -query alpha -alg fl -ttl 5
//
// Without -query, peerd serves until interrupted, printing a status line
// every -status interval.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalefree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "peerd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("peerd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7001", "TCP listen address (this peer's identity)")
		bootstrap = fs.String("bootstrap", "", "bootstrap peer address (empty: start a new overlay)")
		joinStrat = fs.String("join", "dapa", "join strategy: dapa|hapa|random")
		m         = fs.Int("m", 2, "links to establish when joining")
		kc        = fs.Int("kc", 40, "hard degree cutoff (0 = none)")
		tau       = fs.Int("tau", 4, "discovery TTL tau_sub")
		keys      = fs.String("keys", "", "comma-separated content keys to share")
		query     = fs.String("query", "", "issue one query, print hits, and exit")
		alg       = fs.String("alg", "fl", "query algorithm: fl|nf|rw")
		ttl       = fs.Int("ttl", 6, "query TTL")
		window    = fs.Duration("window", 500*time.Millisecond, "reply collection window")
		status    = fs.Duration("status", 10*time.Second, "status print interval")
		seed      = fs.Uint64("seed", uint64(os.Getpid()), "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategy scalefree.JoinStrategy
	switch *joinStrat {
	case "dapa":
		strategy = scalefree.JoinDAPA
	case "hapa":
		strategy = scalefree.JoinHAPA
	case "random":
		strategy = scalefree.JoinRandom
	default:
		return fmt.Errorf("unknown join strategy %q", *joinStrat)
	}
	var keyList []string
	if *keys != "" {
		keyList = strings.Split(*keys, ",")
	}

	// Arm signal handling before any overlay state exists, so SIGINT or
	// SIGTERM at ANY point — mid-join, mid-query, or while serving — runs
	// the deferred peer.Leave, and the flush-on-close outbox delivers the
	// farewells instead of abandoning neighbors to their probe timeouts.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	net := scalefree.NewTCPNetwork()
	defer net.Close()
	peer, err := scalefree.NewPeer(scalefree.PeerConfig{
		Addr: *listen, M: *m, KC: *kc, TauSub: *tau,
		Keys: keyList, Seed: *seed, DiscoverWindow: *window,
	}, net)
	if err != nil {
		return err
	}
	defer peer.Leave()
	fmt.Fprintf(out, "peerd: listening on %s (m=%d kc=%d tau=%d keys=%v)\n", *listen, *m, *kc, *tau, keyList)

	if *bootstrap != "" {
		made, err := await(ctx, peer, out, func() (int, error) {
			return peer.Join(*bootstrap, strategy)
		})
		if err != nil {
			return fmt.Errorf("join via %s: %w", *bootstrap, err)
		}
		fmt.Fprintf(out, "peerd: joined via %s (%s), %d links\n", *bootstrap, strategy, made)
	}

	if *query != "" {
		res, err := await(ctx, peer, out, func() (scalefree.QueryResult, error) {
			return peer.Query(*query, scalefree.SearchAlg(*alg), *ttl)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "peerd: query %q (%s, ttl=%d): %d hits in %s\n",
			*query, *alg, *ttl, len(res.Hits), res.Elapsed.Round(time.Millisecond))
		for _, h := range res.Hits {
			fmt.Fprintf(out, "  hit: %s (degree %d)\n", h.Addr, h.Degree)
		}
		return nil
	}

	tick := time.NewTicker(*status)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := peer.Stats()
			fmt.Fprintf(out, "peerd: degree=%d sent=%d recv=%d queries=%d hits-served=%d\n",
				peer.Degree(), st.Sent, st.Received, st.QueriesSeen, st.HitsServed)
		case <-ctx.Done():
			fmt.Fprintf(out, "peerd: signal received, leaving overlay\n")
			return nil
		}
	}
}

// await runs fn while watching for a shutdown signal. On signal it calls
// peer.Leave — which unblocks an in-flight join or query (the peer stops
// accepting and the outbox flushes farewells) — then reports the
// operation's outcome. The fn goroutine always finishes: Leave forces its
// error return, so nothing leaks past run().
func await[T any](ctx context.Context, peer *scalefree.Peer, out io.Writer, fn func() (T, error)) (T, error) {
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
	}()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-ctx.Done():
		fmt.Fprintf(out, "peerd: signal received, leaving overlay\n")
		peer.Leave()
		res := <-ch
		return res.v, res.err
	}
}
