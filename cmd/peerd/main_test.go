package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"scalefree"
)

// freePort reserves an ephemeral TCP port and returns "127.0.0.1:port".
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestRunBadFlags(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-join", "teleport"}, &buf); err == nil {
		t.Fatal("unknown join strategy should fail")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunQueryAgainstBootstrap(t *testing.T) {
	t.Parallel()
	// Start a bootstrap peer holding content, on a real TCP transport.
	bootAddr := freePort(t)
	bootNet := scalefree.NewTCPNetwork()
	defer bootNet.Close()
	boot, err := scalefree.NewPeer(scalefree.PeerConfig{
		Addr: bootAddr, M: 2, TauSub: 4, Seed: 1,
		Keys:           []string{"alpha"},
		DiscoverWindow: 150 * time.Millisecond,
	}, bootNet)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()

	// peerd joins it, queries for the key, and exits.
	var buf strings.Builder
	var mu sync.Mutex
	out := &lockedWriter{mu: &mu, b: &buf}
	err = run([]string{
		"-listen", freePort(t),
		"-bootstrap", bootAddr,
		"-join", "dapa",
		"-query", "alpha",
		"-alg", "fl",
		"-ttl", "4",
		"-window", "300ms",
		"-seed", "7",
	}, out)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if !strings.Contains(got, "joined via") {
		t.Errorf("peerd should report the join:\n%s", got)
	}
	if !strings.Contains(got, "1 hits") {
		t.Errorf("peerd should find alpha on the bootstrap:\n%s", got)
	}
}

func TestRunQueryMiss(t *testing.T) {
	t.Parallel()
	bootAddr := freePort(t)
	bootNet := scalefree.NewTCPNetwork()
	defer bootNet.Close()
	boot, err := scalefree.NewPeer(scalefree.PeerConfig{
		Addr: bootAddr, M: 2, TauSub: 4, Seed: 2,
		DiscoverWindow: 150 * time.Millisecond,
	}, bootNet)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()

	var buf strings.Builder
	err = run([]string{
		"-listen", freePort(t),
		"-bootstrap", bootAddr,
		"-query", "no-such-key",
		"-window", "200ms",
		"-seed", "8",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 hits") {
		t.Errorf("missing key should yield 0 hits:\n%s", buf.String())
	}
}

func TestRunJoinUnreachableBootstrap(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{
		"-listen", freePort(t),
		"-bootstrap", "127.0.0.1:1", // nothing listens here
		"-query", "x",
		"-window", "100ms",
	}, &buf)
	if err == nil {
		t.Fatal("unreachable bootstrap should fail the join")
	}
}

// lockedWriter guards a strings.Builder for cross-goroutine writes.
type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
