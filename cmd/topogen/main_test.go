package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateAllModels(t *testing.T) {
	t.Parallel()
	cases := []struct {
		model string
		n     int
	}{
		{"pa", 500}, {"cm", 500}, {"hapa", 500}, {"dapa", 300},
		{"grn", 500}, {"mesh", 100}, {"er", 200}, {"ws", 200},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.model, func(t *testing.T) {
			t.Parallel()
			g, err := generate(tc.model, tc.n, 2, 20, 2.5, 4, 0, 10, 0.1, 1)
			if err != nil {
				t.Fatalf("generate(%s): %v", tc.model, err)
			}
			if g.N() < tc.n/2 {
				t.Fatalf("%s: only %d nodes", tc.model, g.N())
			}
		})
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	t.Parallel()
	if _, err := generate("bogus", 100, 2, 0, 2.5, 4, 0, 10, 0.1, 1); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a, err := generate("pa", 400, 2, 30, 2.5, 4, 0, 10, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate("pa", 400, 2, 30, 2.5, 4, 0, 10, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed produced %d vs %d edges", a.M(), b.M())
	}
}

func TestGenerateMeshSizing(t *testing.T) {
	t.Parallel()
	// -n 10 gives a ceil(sqrt(10))=4-side grid -> 16 nodes.
	g, err := generate("mesh", 10, 2, 0, 2.5, 4, 0, 10, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("mesh N = %d, want 16", g.N())
	}
}

func TestDOTFormat(t *testing.T) {
	t.Parallel()
	g, err := generate("pa", 50, 2, 10, 2.5, 4, 0, 10, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "pa"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph \"pa\" {") {
		t.Errorf("DOT header missing:\n%.200s", buf.String())
	}
}
