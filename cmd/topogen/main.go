// Command topogen generates overlay topologies with any of the paper's
// mechanisms and writes them as edge lists (or Graphviz DOT with
// -format dot), printing a structural summary (degree statistics,
// power-law fit, connectivity).
//
// Usage:
//
//	topogen -model pa   -n 10000 -m 2 -kc 40 -seed 1 -o pa.edges
//	topogen -model hapa -n 400 -format dot -o hapa.dot   # render: sfdp -Tsvg
//	topogen -model cm   -n 10000 -m 1 -kc 40 -gamma 2.2
//	topogen -model hapa -n 10000 -m 3 -kc 50
//	topogen -model dapa -n 10000 -m 2 -kc 40 -tau 6 -nsub 20000
//	topogen -model grn  -n 20000 -kbar 10
//	topogen -model mesh -n 10000            (⌈√n⌉ × ⌈√n⌉ grid)
//	topogen -model er   -n 10000 -m 2       (m·n edges)
//	topogen -model ws   -n 10000 -m 2 -beta 0.1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"scalefree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model  = flag.String("model", "pa", "topology model: pa|cm|hapa|dapa|grn|mesh|er|ws")
		n      = flag.Int("n", 10000, "number of nodes (overlay size for dapa)")
		m      = flag.Int("m", 2, "stubs per joining node / minimum degree")
		kc     = flag.Int("kc", 0, "hard degree cutoff (0 = none)")
		gamma  = flag.Float64("gamma", 2.5, "degree exponent (cm)")
		tau    = flag.Int("tau", 6, "local TTL tau_sub (dapa)")
		nsub   = flag.Int("nsub", 0, "substrate size (dapa; default 2n)")
		kbar   = flag.Float64("kbar", 10, "mean degree (grn substrate)")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		out    = flag.String("o", "", "output edge-list file (default stdout)")
		format = flag.String("format", "edges", "output format: edges|dot (dot renders with graphviz)")
	)
	flag.Parse()

	g, err := generate(*model, *n, *m, *kc, *gamma, *tau, *nsub, *kbar, *beta, *seed)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	switch *format {
	case "edges":
		if err := g.WriteEdgeList(w); err != nil {
			return err
		}
	case "dot":
		if err := g.WriteDOT(w, *model); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want edges or dot)", *format)
	}
	printSummary(os.Stderr, g)
	return nil
}

func generate(model string, n, m, kc int, gamma float64, tau, nsub int, kbar, beta float64, seed uint64) (*scalefree.Graph, error) {
	rng := scalefree.NewRNG(seed)
	switch model {
	case "pa":
		g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: n, M: m, KC: kc}, rng)
		return g, err
	case "cm":
		g, _, err := scalefree.GenerateCM(scalefree.CMConfig{N: n, M: m, KC: kc, Gamma: gamma}, rng)
		return g, err
	case "hapa":
		g, _, err := scalefree.GenerateHAPA(scalefree.HAPAConfig{N: n, M: m, KC: kc}, rng)
		return g, err
	case "dapa":
		if nsub <= 0 {
			nsub = 2 * n
		}
		sub, _, err := scalefree.GenerateGRN(scalefree.GRNConfig{N: nsub, MeanDegree: kbar}, rng)
		if err != nil {
			return nil, fmt.Errorf("substrate: %w", err)
		}
		ov, _, err := scalefree.GenerateDAPA(sub, scalefree.DAPAConfig{
			NOverlay: n, M: m, KC: kc, TauSub: tau,
		}, rng)
		if err != nil {
			return nil, err
		}
		return ov.G, nil
	case "grn":
		g, _, err := scalefree.GenerateGRN(scalefree.GRNConfig{N: n, MeanDegree: kbar}, rng)
		return g, err
	case "mesh":
		side := int(math.Ceil(math.Sqrt(float64(n))))
		return scalefree.GenerateMesh(side, side)
	case "er":
		return scalefree.GenerateER(n, m*n, rng)
	case "ws":
		return scalefree.GenerateWattsStrogatz(n, m, beta, rng)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func printSummary(w *os.File, g *scalefree.Graph) {
	mean := 0.0
	if g.N() > 0 {
		mean = float64(g.TotalDegree()) / float64(g.N())
	}
	fmt.Fprintf(w, "nodes=%d edges=%d degree(min/mean/max)=%d/%.2f/%d connected=%v giant=%d\n",
		g.N(), g.M(), g.MinDegree(), mean, g.MaxDegree(), g.IsConnected(), len(g.GiantComponent()))
	if fit, err := scalefree.FitDegreeExponent(scalefree.DegreeDistribution(g), 1, 0); err == nil {
		fmt.Fprintf(w, "power-law fit: gamma=%.2f ± %.2f (over %d log bins)\n", fit.Gamma, fit.StdErr, fit.Points)
	}
}
