package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scalefree"
	"scalefree/internal/sim"
)

func TestRunInlineReport(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{"-n", "600", "-m", "2", "-kc", "20", "-ks-trials", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== size ==", "nodes=600",
		"== degree distribution ==", "power-law fit",
		"load fairness",
		"== structure ==", "effective diameter", "rich club",
		"== robustness", "site percolation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunNoRobust(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{"-n", "400", "-robust=false", "-ks-trials", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "== robustness") {
		t.Error("robustness section should be skipped")
	}
}

func TestRunFromEdgeFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: 300, M: 2}, scalefree.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-robust=false", "-ks-trials", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes=300") {
		t.Error("report should describe the loaded graph")
	}
}

func TestRunMissingFile(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-in", "/nonexistent.edges"}, &buf); err == nil {
		t.Fatal("missing input should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunJournalSubcommand(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "fig9.journal")
	j, err := sim.OpenJournal(path, "fig9", 7, sim.Scale{Realizations: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := sim.SlotRecord{Kind: 1, Stream: 0xABC, Sub: 0xDEF, Realization: 0, Payload: []byte{1, 2, 3, 4}}
	if _, err := j.Accept(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkRealizationDone(0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := run([]string{"journal", "-keys", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"spec=fig9 seed=7",
		"records=1 sweep-slots=1",
		"realization 0: 1 record(s) done",
		"done markers: [0]",
		"clean:",
		"(kind=sweep-slots, stream=0xabc, sub=0xdef, r=0) 4B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("journal report missing %q in:\n%s", want, out)
		}
	}

	// Tear the tail: the report must call it out without repairing it.
	full := rec.MarshalBinary()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)
	buf.Reset()
	if err := run([]string{"journal", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TORN TAIL") {
		t.Errorf("torn journal not flagged:\n%s", buf.String())
	}
	if got := fileSize(t, path); got != sizeBefore {
		t.Errorf("inspection changed the file size: %d -> %d", sizeBefore, got)
	}
}

func TestRunJournalSubcommandErrors(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"journal"}, &buf); err == nil {
		t.Fatal("journal with no file should fail")
	}
	if err := run([]string{"journal", filepath.Join(t.TempDir(), "missing.journal")}, &buf); err == nil {
		t.Fatal("journal on a missing file should fail")
	}
	notJournal := filepath.Join(t.TempDir(), "x.journal")
	if err := os.WriteFile(notJournal, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"journal", notJournal}, &buf); err == nil {
		t.Fatal("journal on a non-journal file should fail")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
