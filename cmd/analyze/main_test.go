package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scalefree"
)

func TestRunInlineReport(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{"-n", "600", "-m", "2", "-kc", "20", "-ks-trials", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== size ==", "nodes=600",
		"== degree distribution ==", "power-law fit",
		"load fairness",
		"== structure ==", "effective diameter", "rich club",
		"== robustness", "site percolation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunNoRobust(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := run([]string{"-n", "400", "-robust=false", "-ks-trials", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "== robustness") {
		t.Error("robustness section should be skipped")
	}
}

func TestRunFromEdgeFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: 300, M: 2}, scalefree.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-robust=false", "-ks-trials", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes=300") {
		t.Error("report should describe the loaded graph")
	}
}

func TestRunMissingFile(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-in", "/nonexistent.edges"}, &buf); err == nil {
		t.Fatal("missing input should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
