package main

// The "journal" subcommand: a read-only post-mortem for experiment
// journals — the checkpoint files local runs resume from and the ledger
// distributed coordinators stream worker records into. It decodes the
// header identity, inventories every intact record and completion
// marker, and measures the torn tail a crash left behind, without
// truncating or otherwise touching the file (unlike -resume, which
// repairs in place).

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"scalefree/internal/sim"
)

func runJournal(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze journal", flag.ContinueOnError)
	keys := fs.Bool("keys", false, "list every record key (kind, stream, sub, realization, payload bytes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: analyze journal [-keys] <file.journal>...")
	}
	for i, path := range fs.Args() {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := reportJournal(path, *keys, out); err != nil {
			return err
		}
	}
	return nil
}

func reportJournal(path string, keys bool, out io.Writer) error {
	info, err := sim.InspectJournal(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== %s ==\n", info.Path)
	fmt.Fprintf(out, "spec=%s seed=%d version=%d\n", info.Spec, info.Seed, info.Version)

	// Record inventory, grouped by kind and by realization.
	byKind := map[string]int{}
	byReal := map[int]int{}
	for _, r := range info.Records {
		byKind[r.KindName]++
		byReal[r.Realization]++
	}
	fmt.Fprintf(out, "records=%d", len(info.Records))
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(out, " %s=%d", k, byKind[k])
	}
	fmt.Fprintln(out)

	reals := make([]int, 0, len(byReal))
	for r := range byReal {
		reals = append(reals, r)
	}
	sort.Ints(reals)
	done := map[int]bool{}
	for _, r := range info.Done {
		done[r] = true
	}
	for _, r := range reals {
		marker := ""
		if done[r] {
			marker = " done"
		}
		fmt.Fprintf(out, "  realization %d: %d record(s)%s\n", r, byReal[r], marker)
	}
	if len(info.Done) > 0 {
		fmt.Fprintf(out, "done markers: %v\n", info.Done)
	}
	for _, f := range info.Failures {
		fmt.Fprintf(out, "permanent failure: %s\n", f)
	}

	// Torn-tail diagnostics: a nonzero tail is what a crash mid-append
	// leaves; -resume (or the coordinator's restart) truncates it and
	// recomputes from the last clean record.
	if torn := info.TornBytes(); torn > 0 {
		fmt.Fprintf(out, "TORN TAIL: %d byte(s) past the clean prefix (%d/%d good) — a -resume run will truncate and recompute\n",
			torn, info.GoodBytes, info.FileBytes)
	} else {
		fmt.Fprintf(out, "clean: all %d byte(s) validate\n", info.FileBytes)
	}

	if keys {
		for _, r := range info.Records {
			fmt.Fprintf(out, "  (kind=%s, stream=%#x, sub=%#x, r=%d) %dB\n",
				r.KindName, r.Stream, r.Sub, r.Realization, r.PayloadLen)
		}
	}
	return nil
}
