// Command analyze prints a full structural report for a topology: size,
// degree statistics, power-law fit with KS goodness-of-fit, clustering,
// assortativity, k-core structure, path lengths, rich-club and percolation
// structure, and a quick robustness probe. It reads an edge list (from
// topogen or any tool emitting the standard format) or generates a PA
// topology inline.
//
// Usage:
//
//	topogen -model dapa -n 10000 -o overlay.edges
//	analyze -in overlay.edges
//	analyze -n 10000 -m 2 -kc 40          # inline PA
//	analyze journal results/fig9.journal  # inspect an experiment journal
//
// The "journal" subcommand dumps an experiment journal's header, record
// inventory, completion markers, and torn-tail diagnostics read-only —
// the post-mortem for interrupted local runs and distributed coordinator
// sessions (see EXPERIMENTS.md "Distributed runs").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scalefree"
	"scalefree/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// Subcommand dispatch before flag parsing: "analyze journal <file>"
	// inspects experiment journals instead of topologies.
	if len(args) > 0 && args[0] == "journal" {
		return runJournal(args[1:], out)
	}
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "edge-list file (empty: generate PA inline)")
		n        = fs.Int("n", 10000, "nodes for inline PA generation")
		m        = fs.Int("m", 2, "stubs for inline PA generation")
		kc       = fs.Int("kc", 0, "hard cutoff for inline PA generation")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		robust   = fs.Bool("robust", true, "run the robustness probe (slower)")
		ksTrials = fs.Int("ks-trials", 50, "bootstrap trials for the power-law fit (0 = skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := load(*in, *n, *m, *kc, *seed)
	if err != nil {
		return err
	}
	rng := scalefree.NewRNG(*seed + 1)

	fmt.Fprintln(out, "== size ==")
	mean := 0.0
	if g.N() > 0 {
		mean = float64(g.TotalDegree()) / float64(g.N())
	}
	fmt.Fprintf(out, "nodes=%d edges=%d degree(min/mean/max)=%d/%.2f/%d\n",
		g.N(), g.M(), g.MinDegree(), mean, g.MaxDegree())
	giant := g.GiantComponent()
	fmt.Fprintf(out, "connected=%v giant=%d (%.1f%%) components=%d\n",
		g.IsConnected(), len(giant), 100*float64(len(giant))/float64(max(1, g.N())),
		len(g.ConnectedComponents()))

	fmt.Fprintln(out, "\n== degree distribution ==")
	d := scalefree.DegreeDistribution(g)
	if fit, err := scalefree.FitDegreeExponent(d, 2, 0); err == nil {
		fmt.Fprintf(out, "power-law fit (log-binned LS): gamma=%.3f ± %.3f over %d bins\n",
			fit.Gamma, fit.StdErr, fit.Points)
		if ks, err := stats.KSDistance(d, fit.Gamma, 2); err == nil {
			fmt.Fprintf(out, "KS distance to fitted model: D=%.4f\n", ks)
			if *ksTrials > 0 {
				score, err := stats.KSBootstrap(ks, fit.Gamma, 2, g.MaxDegree(), g.N(), *ksTrials, rng)
				if err == nil {
					verdict := "plausible"
					if score < 0.1 {
						verdict = "rejected (expected under hard cutoffs: the spike at kc breaks pure power-law form)"
					}
					fmt.Fprintf(out, "bootstrap score: %.2f -> power law %s\n", score, verdict)
				}
			}
		}
	} else {
		fmt.Fprintf(out, "power-law fit unavailable: %v\n", err)
	}
	if seq := g.DegreeSequence(); len(seq) > 0 {
		if fit, err := stats.FitPowerLawMLE(seq, 6); err == nil {
			fmt.Fprintf(out, "tail MLE (k>=6): gamma=%.3f ± %.3f over %d nodes\n", fit.Gamma, fit.StdErr, fit.Points)
		}
	}

	fmt.Fprintf(out, "load fairness: Gini=%.3f, top-1%% of peers hold %.1f%% of links\n",
		scalefree.DegreeGini(g), 100*scalefree.TopLoadShare(g, 0.01))

	fmt.Fprintln(out, "\n== structure ==")
	fmt.Fprintf(out, "global clustering (transitivity): %.4f\n", scalefree.GlobalClustering(g))
	if r, err := scalefree.DegreeAssortativity(g); err == nil {
		fmt.Fprintf(out, "degree assortativity: %+.4f\n", r)
	}
	fmt.Fprintf(out, "max core (degeneracy): %d; 2-core covers %d nodes\n", g.MaxCore(), len(g.KCore(2)))
	ps := g.SamplePathStats(min(60, g.N()), rng)
	fmt.Fprintf(out, "mean distance: %.2f (sampled); diameter >= %d\n",
		ps.MeanDistance, g.EstimateDiameter(4, rng))
	if ed, err := scalefree.EffectiveDiameter(g, 0.9, min(64, g.N()), rng); err == nil {
		fmt.Fprintf(out, "effective diameter (90%%): %d\n", ed)
	}
	if rc := scalefree.RichClub(g); len(rc) > 0 {
		deepest := rc[len(rc)-1]
		fmt.Fprintf(out, "rich club: deepest club at k>%d (%d nodes, phi=%.3f)\n",
			deepest.K, deepest.Nodes, deepest.Phi)
	}

	if *robust {
		fmt.Fprintln(out, "\n== robustness (20% removal) ==")
		for _, strat := range []scalefree.RemovalStrategy{scalefree.RemoveRandom, scalefree.RemoveHighestDegree} {
			pts, err := scalefree.Robustness(g, strat, 0.05, 0.2, rng)
			if err != nil {
				return err
			}
			last := pts[len(pts)-1]
			fmt.Fprintf(out, "%-16s giant %.1f%% -> %.1f%%\n", strat, 100*pts[0].GiantFrac, 100*last.GiantFrac)
		}
		if pts, err := scalefree.SitePercolation(g, 10, 2, rng); err == nil {
			fmt.Fprintf(out, "site percolation: giant reaches 25%% of N at occupation p≈%.2f\n",
				scalefree.PercolationThreshold(pts, 0.25))
		}
	}
	return nil
}

func load(path string, n, m, kc int, seed uint64) (*scalefree.Graph, error) {
	if path == "" {
		g, _, err := scalefree.GeneratePA(scalefree.PAConfig{N: n, M: m, KC: kc}, scalefree.NewRNG(seed))
		return g, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "analyze: close:", cerr)
		}
	}()
	return scalefree.ReadEdgeList(f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
