package scalefree

// One benchmark per paper table and figure (each regenerates the artifact
// through the internal/sim spec registry at a reduced scale and reports
// headline metrics), plus ablation benches isolating individual modeling
// choices (see EXPERIMENTS.md for the spec registry and scales).
//
// Paper-scale regeneration is done by `go run ./cmd/experiments -scale
// paper`; these benches exist so `go test -bench=.` exercises every
// experiment end to end and tracks its cost over time.

import (
	"fmt"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/search"
	"scalefree/internal/sim"
	"scalefree/internal/xrand"
)

// benchScale is small enough for `go test -bench=.` to sweep every figure
// in minutes while preserving every qualitative trend.
var benchScale = sim.Scale{
	NDegree:      4000,
	NSearch:      2000,
	NSubstrate:   4000,
	NOverlay:     2000,
	Realizations: 2,
	Sources:      8,
	MaxTTLFlood:  12,
	MaxTTLNF:     6,
}

// runSpec regenerates one registered experiment per iteration and reports
// the number of panels and series produced.
func runSpec(b *testing.B, id string) {
	b.Helper()
	spec, err := sim.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var panels, series int
	for i := 0; i < b.N; i++ {
		figs, err := spec.Run(benchScale, uint64(1000+i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		panels = len(figs)
		series = 0
		for _, f := range figs {
			series += len(f.Series)
		}
	}
	b.ReportMetric(float64(panels), "panels")
	b.ReportMetric(float64(series), "series")
}

func BenchmarkFig1aPADegreeDist(b *testing.B)     { runSpec(b, "fig1a") }
func BenchmarkFig1bPAHardCutoff(b *testing.B)     { runSpec(b, "fig1b") }
func BenchmarkFig1cExponentVsCutoff(b *testing.B) { runSpec(b, "fig1c") }
func BenchmarkFig2CMDegreeDist(b *testing.B)      { runSpec(b, "fig2") }
func BenchmarkFig3HAPADegreeDist(b *testing.B)    { runSpec(b, "fig3") }
func BenchmarkFig4DAPADegreeDist(b *testing.B)    { runSpec(b, "fig4") }
func BenchmarkFig4gDAPAExponent(b *testing.B)     { runSpec(b, "fig4g") }
func BenchmarkFig6FloodPAHAPA(b *testing.B)       { runSpec(b, "fig6") }
func BenchmarkFig7FloodCM(b *testing.B)           { runSpec(b, "fig7") }
func BenchmarkFig8FloodDAPA(b *testing.B)         { runSpec(b, "fig8") }
func BenchmarkFig9NFPACMHAPA(b *testing.B)        { runSpec(b, "fig9") }
func BenchmarkFig10NFDAPA(b *testing.B)           { runSpec(b, "fig10") }
func BenchmarkFig11RWPACMHAPA(b *testing.B)       { runSpec(b, "fig11") }
func BenchmarkFig12RWDAPA(b *testing.B)           { runSpec(b, "fig12") }
func BenchmarkTable1DiameterScaling(b *testing.B) { runSpec(b, "table1") }
func BenchmarkTable2Locality(b *testing.B)        { runSpec(b, "table2") }
func BenchmarkMessagingComplexity(b *testing.B)   { runSpec(b, "messaging") }
func BenchmarkExtAttackTolerance(b *testing.B)    { runSpec(b, "attack") }
func BenchmarkExtDeliveryScaling(b *testing.B)    { runSpec(b, "delivery") }
func BenchmarkExtKWalkers(b *testing.B)           { runSpec(b, "kwalk") }
func BenchmarkExtFairness(b *testing.B)           { runSpec(b, "fairness") }
func BenchmarkExtStrategies(b *testing.B)         { runSpec(b, "strategies") }
func BenchmarkExtReplication(b *testing.B)        { runSpec(b, "replication") }
func BenchmarkExtChurn(b *testing.B)              { runSpec(b, "churn") }
func BenchmarkExtDESFlood(b *testing.B)           { runSpec(b, "desflood") }
func BenchmarkExtDESKWalk(b *testing.B)           { runSpec(b, "deskwalk") }

// BenchmarkWorkersScaling regenerates Fig. 9 (the NF sweep, the heaviest
// search spec) across the three-stage scheduler grid: sweep workers ×
// source shards × gen workers. workers=1/shards=1/gen=1 is the fully
// serial baseline; workers=2/shards=1/gen=1 is the PR 2 configuration
// (realization-level parallelism only, which starves once realizations <
// cores); the gen=1 vs gen=4 pair at workers=4/shards=4 isolates the PR 4
// pipelined build stage on a build-dominated run (benchScale has 2
// realizations, so generation is the long pole exactly as in the fig9
// smoke pprof that motivated the pipeline); "default" is the real default
// (all knobs 0), where the engine auto-sizes shards so that workers ×
// shards ≈ GOMAXPROCS and matches gen workers to sweep workers. Output is
// bit-for-bit identical at every grid point; only wall-clock changes.
func BenchmarkWorkersScaling(b *testing.B) {
	grid := []struct {
		name                 string
		workers, shards, gen int
	}{
		{"workers=1,shards=1,gen=1", 1, 1, 1},
		{"workers=2,shards=1,gen=1", 2, 1, 1},
		{"workers=4,shards=4,gen=1", 4, 4, 1},
		{"workers=4,shards=4,gen=4", 4, 4, 4},
		{"default", 0, 0, 0},
	}
	for _, c := range grid {
		sc := benchScale
		sc.Workers = c.workers
		sc.SourceShards = c.shards
		sc.GenWorkers = c.gen
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Fig9(sc, 1000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations ---------------------------------------------------------

// Ablation (a): the literal Appendix A rejection loop vs the O(N·m)
// stub-list sampler. Same distribution, very different cost.
func BenchmarkAblationPASampling(b *testing.B) {
	const n, m = 1200, 2
	b.Run("literal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := GeneratePA(PAConfig{N: n, M: m, LiteralSampling: true}, NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stublist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := GeneratePA(PAConfig{N: n, M: m}, NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation (b): DAPA on a GRN substrate vs a 2-D mesh — the paper argues
// GRN is "topologically closer to real life nodes in the Internet".
func BenchmarkAblationDAPASubstrate(b *testing.B) {
	run := func(b *testing.B, mkSub func(rng *RNG) (*Graph, error)) {
		var maxDeg int
		for i := 0; i < b.N; i++ {
			rng := NewRNG(uint64(100 + i))
			sub, err := mkSub(rng)
			if err != nil {
				b.Fatal(err)
			}
			ov, _, err := GenerateDAPA(sub, DAPAConfig{NOverlay: 1000, M: 2, KC: 40, TauSub: 10}, rng)
			if err != nil {
				b.Fatal(err)
			}
			maxDeg = ov.G.MaxDegree()
		}
		b.ReportMetric(float64(maxDeg), "maxdeg")
	}
	b.Run("grn", func(b *testing.B) {
		run(b, func(rng *RNG) (*Graph, error) {
			g, _, err := GenerateGRN(GRNConfig{N: 2000, MeanDegree: 10}, rng)
			return g, err
		})
	})
	b.Run("mesh", func(b *testing.B) {
		run(b, func(rng *RNG) (*Graph, error) { return GenerateMesh(45, 45) })
	})
}

// Ablation (c): NF fan-out = the prescribed m vs a fixed fan-out of 2 on
// an m=3 topology — how much of NF's performance comes from matching the
// network's connectedness.
func BenchmarkAblationNFFanOut(b *testing.B) {
	g, _, err := GeneratePA(PAConfig{N: 4000, M: 3, KC: 40}, NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, fan := range []int{3, 2} {
		fan := fan
		b.Run(fmt.Sprintf("kmin=%d", fan), func(b *testing.B) {
			rng := NewRNG(2)
			var hits int
			for i := 0; i < b.N; i++ {
				res, err := NormalizedFlood(g, rng.Intn(g.N()), 6, fan, rng)
				if err != nil {
					b.Fatal(err)
				}
				hits = res.HitsAt(6)
			}
			b.ReportMetric(float64(hits), "hits@6")
		})
	}
}

// Ablation (d): the paper's random walk excludes the node the query just
// came from; compare against a plain uniform walk that may bounce back.
func BenchmarkAblationRWBacktrack(b *testing.B) {
	g, _, err := GeneratePA(PAConfig{N: 4000, M: 1, KC: 40}, NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	const steps = 500
	b.Run("non-backtracking", func(b *testing.B) {
		rng := NewRNG(4)
		var hits int
		for i := 0; i < b.N; i++ {
			res, err := RandomWalk(g, rng.Intn(g.N()), steps, rng)
			if err != nil {
				b.Fatal(err)
			}
			hits = res.HitsAt(steps)
		}
		b.ReportMetric(float64(hits), "hits")
	})
	b.Run("uniform", func(b *testing.B) {
		rng := NewRNG(4)
		var hits int
		for i := 0; i < b.N; i++ {
			hits = uniformWalkHits(g, rng.Intn(g.N()), steps, rng)
		}
		b.ReportMetric(float64(hits), "hits")
	})
}

// Ablation (e): the high-degree-seeking walk's hub dependence — its
// coverage advantage over the blind walk with and without a hard cutoff
// (the strategies experiment's headline, isolated).
func BenchmarkAblationHDSHubDependence(b *testing.B) {
	const steps = 500
	for _, kc := range []int{NoCutoff, 10} {
		kc := kc
		name := "nokc"
		if kc != NoCutoff {
			name = fmt.Sprintf("kc=%d", kc)
		}
		b.Run(name, func(b *testing.B) {
			g, _, err := GeneratePA(PAConfig{N: 4000, M: 2, KC: kc}, NewRNG(5))
			if err != nil {
				b.Fatal(err)
			}
			rng := NewRNG(6)
			var hds, blind int
			for i := 0; i < b.N; i++ {
				src := rng.Intn(g.N())
				rh, err := HighDegreeWalk(g, src, steps, rng)
				if err != nil {
					b.Fatal(err)
				}
				rb, err := RandomWalk(g, src, steps, rng)
				if err != nil {
					b.Fatal(err)
				}
				hds = rh.HitsAt(steps)
				blind = rb.HitsAt(steps)
			}
			b.ReportMetric(float64(hds), "hds-hits")
			b.ReportMetric(float64(blind), "rw-hits")
		})
	}
}

// uniformWalkHits is the ablation walker: uniform neighbor choice,
// backtracking allowed.
func uniformWalkHits(g *Graph, src, steps int, rng *RNG) int {
	visited := map[int]bool{src: true}
	cur := src
	for t := 0; t < steps; t++ {
		next := g.RandomNeighbor(cur, rng)
		if next < 0 {
			break
		}
		cur = next
		visited[cur] = true
	}
	return len(visited)
}

// --- Core-primitive throughput ----------------------------------------

// BenchmarkGenerators tracks raw generator throughput at search scale.
func BenchmarkGenerators(b *testing.B) {
	const n, m, kc = 10000, 2, 40
	b.Run("pa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gen.PA(gen.PAConfig{N: n, M: m, KC: kc}, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gen.CM(gen.CMConfig{N: n, M: m, KC: kc, Gamma: 2.5}, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hapa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gen.HAPA(gen.HAPAConfig{N: n, M: m, KC: kc}, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dapa", func(b *testing.B) {
		sub, _, err := gen.GRN(gen.GRNConfig{N: 2 * n, MeanDegree: 10}, xrand.New(9))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := gen.DAPA(sub, gen.DAPAConfig{NOverlay: n, M: m, KC: kc, TauSub: 6}, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearches tracks raw search throughput on a 10k-node PA graph.
func BenchmarkSearches(b *testing.B) {
	g, _, err := gen.PA(gen.PAConfig{N: 10000, M: 2, KC: 40}, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.Run("flood", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.Flood(g, rng.Intn(g.N()), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.NormalizedFlood(g, rng.Intn(g.N()), 10, 2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rw-nf-budget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := search.RandomWalkWithNFBudget(g, rng.Intn(g.N()), 10, 2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveOverlayGrow measures the live runtime: peers joining per
// second through real protocol messages.
func BenchmarkLiveOverlayGrow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := NewOverlay(OverlayConfig{
			M: 2, KC: 20, TauSub: 4, Strategy: JoinDAPA,
			Seed: uint64(i), DiscoverWindow: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := o.Grow(100, nil); err != nil {
			b.Fatal(err)
		}
		o.Shutdown()
	}
	b.ReportMetric(100, "peers/op")
}
