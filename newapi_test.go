package scalefree

// Facade tests for the extension APIs added on top of the paper's core:
// baseline search strategies, the content/replication layer, the churn
// laboratory, uncooperative behaviors, and structural metrics.

import (
	"strings"
	"testing"
)

func TestPublicAPISearchStrategies(t *testing.T) {
	t.Parallel()
	rng := NewRNG(1)
	g, _, err := GeneratePA(PAConfig{N: 800, M: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := HighDegreeWalk(g, 0, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hd.HitsAt(100) < 2 {
		t.Errorf("HDS walk covered %d nodes", hd.HitsAt(100))
	}
	pf, err := ProbabilisticFlood(g, 0, 5, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pf.HitsAt(5) < 1 || pf.HitsAt(5) > g.N() {
		t.Errorf("probabilistic flood hits %d out of range", pf.HitsAt(5))
	}
	hy, err := HybridSearch(g, 0, 2, 4, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(hy.Hits) != 2+50+1 {
		t.Errorf("hybrid axis length %d", len(hy.Hits))
	}
}

func TestPublicAPISearchScratch(t *testing.T) {
	t.Parallel()
	rng := NewRNG(2)
	g, _, err := GeneratePA(PAConfig{N: 800, M: 2, KC: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := Freeze(g) // freeze once, search many times — the hot-path pattern
	s := NewSearchScratch(f.N())
	fresh, err := Flood(g, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := s.Flood(f, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.HitsAt(6) != reused.HitsAt(6) {
		t.Fatalf("scratch flood hits %d, fresh flood hits %d", reused.HitsAt(6), fresh.HitsAt(6))
	}
	// Reuse across calls is the point; the second search must stand alone.
	if _, err := s.NormalizedFlood(f, 9, 6, 2, rng); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIContent(t *testing.T) {
	t.Parallel()
	rng := NewRNG(2)
	g, _, err := GeneratePA(PAConfig{N: 1000, M: 2, KC: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCatalog(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []ReplicationStrategy{ReplicateUniform, ReplicateProportional, ReplicateSquareRoot} {
		p, err := Replicate(cat, g.N(), 500, s, rng)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		ess, err := ExpectedSearchSize(g, p, cat, 100, 20000, rng)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ess.SuccessRate() < 0.9 {
			t.Errorf("%s: success %v", s, ess.SuccessRate())
		}
		fl, err := FloodQuerySuccess(g, p, cat, 100, 4, rng)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if fl.SuccessRate() <= 0 {
			t.Errorf("%s: flood success %v", s, fl.SuccessRate())
		}
	}
}

func TestPublicAPIChurn(t *testing.T) {
	t.Parallel()
	sim, err := NewChurnSimulator(ChurnConfig{
		InitialN: 200, M: 2, KC: 20,
		Join:     ChurnJoinPreferential,
		Repair:   ChurnReconnectRepair,
		Graceful: true,
	}, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(200, 0.5, 50, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 4 {
		t.Fatalf("trace %d snapshots", len(trace))
	}
	last := trace[len(trace)-1]
	if last.GiantFrac < 0.9 {
		t.Errorf("repaired overlay giant %v", last.GiantFrac)
	}
	if sim.Stats().Joins+sim.Stats().Leaves != 200 {
		t.Errorf("events %+v", sim.Stats())
	}
}

func TestPublicAPIBehavior(t *testing.T) {
	t.Parallel()
	if (Behavior{}).Uncooperative() {
		t.Error("zero behavior should be cooperative")
	}
	o, err := NewOverlay(OverlayConfig{
		M: 1, TauSub: 2, Seed: 4, DiscoverWindow: 30,
		BehaviorFor: func(i int) Behavior {
			return Behavior{NeverServeHits: i%2 == 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if _, err := o.Spawn("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.SpawnJoin("k"); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 2 {
		t.Fatalf("size %d", o.Size())
	}
}

func TestPublicAPIStructureMetrics(t *testing.T) {
	t.Parallel()
	rng := NewRNG(5)
	g, _, err := GeneratePA(PAConfig{N: 1200, M: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rc := RichClub(g)
	if len(rc) == 0 || rc[0].K != 0 {
		t.Fatalf("rich club %v", rc)
	}
	ed, err := EffectiveDiameter(g, 0.9, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ed < 2 || ed > 20 {
		t.Errorf("effective diameter %d implausible for PA N=1200", ed)
	}
	pts, err := SitePercolation(g, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	th := PercolationThreshold(pts, 0.25)
	if th <= 0 || th > 1 {
		t.Errorf("percolation threshold %v", th)
	}
}

func TestStrategyNamesStable(t *testing.T) {
	t.Parallel()
	// The replication strategy names appear in reports and CSV output;
	// renames are breaking.
	names := []string{
		ReplicateUniform.String(),
		ReplicateProportional.String(),
		ReplicateSquareRoot.String(),
	}
	want := "uniform,proportional,square-root"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("strategy names %q, want %q", got, want)
	}
}
