package scalefree

// Public-API tests for the extension surface: alternative generators,
// multiple walkers, delivery times, and robustness analysis.

import (
	"testing"
)

func TestPublicAPINLPA(t *testing.T) {
	t.Parallel()
	g, _, err := GenerateNLPA(NLPAConfig{N: 2000, M: 2, Alpha: 0.5}, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("NLPA graph disconnected")
	}
	// Sublinear kernel: hubs bounded well under the linear-PA natural
	// cutoff m·sqrt(N) ≈ 89.
	if g.MaxDegree() > 89 {
		t.Fatalf("sublinear NLPA max degree %d", g.MaxDegree())
	}
}

func TestPublicAPIFitness(t *testing.T) {
	t.Parallel()
	g, eta, _, err := GenerateFitness(FitnessConfig{N: 2000, M: 2, KC: 30}, NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(eta) != 2000 || g.MaxDegree() > 30 {
		t.Fatalf("eta=%d maxdeg=%d", len(eta), g.MaxDegree())
	}
}

func TestPublicAPIKRandomWalks(t *testing.T) {
	t.Parallel()
	g, _, err := GeneratePA(PAConfig{N: 2000, M: 2}, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := KRandomWalks(g, 0, 4, 100, NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitsAt(100) < 50 {
		t.Fatalf("4 walkers × 100 steps covered only %d nodes", res.HitsAt(100))
	}
	if res.MessagesAt(100) != 400 {
		t.Fatalf("messages %d", res.MessagesAt(100))
	}
}

func TestPublicAPIDelivery(t *testing.T) {
	t.Parallel()
	g, _, err := GeneratePA(PAConfig{N: 3000, M: 2}, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := FloodDelivery(g, 0, 1500, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Found {
		t.Fatal("flood failed to deliver on a connected graph")
	}
	rd, err := RandomWalkDelivery(g, 0, 1500, 1_000_000, NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Found {
		t.Fatal("walk failed to deliver within a generous budget")
	}
	if rd.Time < fd.Time {
		t.Fatalf("RW delivery (%d) beat the shortest path (%d)", rd.Time, fd.Time)
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	t.Parallel()
	g, _, err := GeneratePA(PAConfig{N: 3000, M: 3}, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	c := GlobalClustering(g)
	if c < 0 || c > 1 {
		t.Fatalf("clustering %v", c)
	}
	if _, err := DegreeAssortativity(g); err != nil {
		t.Fatal(err)
	}
	pts, err := Robustness(g, RemoveHighestDegree, 0.05, 0.3, NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 || pts[0].GiantFrac < 0.99 {
		t.Fatalf("robustness points %v", pts)
	}
}
